"""The IR interpreter: executes compiled functions on the machine.

Semantics notes:

* Register values are unsigned 64-bit integers (two's-complement
  representation for signed quantities); pointer tags live in the top 16
  bits exactly as on the modelled hardware.
* Every load/store checks the base pointer's *poison bits* (nonzero →
  trap), then performs the *implicit bounds check* when the address
  operand's IFPR carries bounds — the paper's zero-instruction-overhead
  checking path.
* ``promote`` delegates to the IFP unit; under the evaluation's
  "no-promote" configuration it degenerates to a NOP of the same
  instruction count.
* Cycle costs: 1 cycle baseline per instruction; memory operations add the
  cache-hierarchy cost; multiplies/divides and the IFP unit's multi-cycle
  operations add their extra latencies.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    BoundsTrap, GuestExit, LinkError, PoisonTrap, SimTrap,
    StepBudgetExceeded, TemporalViolation, WorkloadTimeout,
)
from repro.compiler.ir import BIN_CODES, IRFunction, Op
from repro.ifp.bounds import Bounds
from repro.mem.layout import ADDRESS_MASK
from repro.obs.events import BoundsSpillEvent, CheckEvent, PromoteEvent
from repro.temporal import temporal_violation

_SCHEME_NAMES = ("LEGACY", "LOCAL_OFFSET", "SUBHEAP", "GLOBAL_TABLE")

U64 = (1 << 64) - 1
_SIGN = 1 << 63

#: BIN/BINI variant codes now live with the IR and are assigned at
#: compile/load time (see :func:`repro.compiler.ir.assign_bin_codes`);
#: kept as an alias for backward compatibility.
_BIN_CODES: Dict[str, int] = BIN_CODES

_MUL_EXTRA = 2   #: extra cycles for multiply
_DIV_EXTRA = 7   #: extra cycles for divide/remainder
_CALL_EXTRA = 1  #: extra cycles for call/return


def _signed(value: int) -> int:
    return value - (1 << 64) if value & _SIGN else value


class Interpreter:
    def __init__(self, machine):
        self.machine = machine
        self.program = machine.program
        self.memory = machine.memory
        self.hierarchy = machine.hierarchy
        self.ifp = machine.ifp
        self.stats = machine.stats
        self.symbols = machine.image.symbols
        self.functions_by_address = machine.image.functions_by_address
        cfg = machine.config.ifp
        self._granule_mask = cfg.granule - 1
        self._granule_shift = cfg.granule.bit_length() - 1
        self._local_off_bits = cfg.local_offset_bits
        self._local_sub_bits = cfg.local_subobj_bits
        self._subheap_sub_bits = cfg.subheap_subobj_bits
        self.executed = 0
        self._limit = machine.config.max_instructions
        #: wall-clock deadline (time.monotonic value; 0.0 disables).
        #: Checked every _DEADLINE_STRIDE instructions so the watchdog
        #: costs one mask-and-test per instruction when armed.
        self._deadline = 0.0
        self._timeout_seconds = 0.0
        self._no_promote = machine.config.no_promote
        self._mac_key = machine.config.mac_key
        #: temporal lock registry (None when config.temporal == "off");
        #: deref sites gate on ``bound.tkey`` — nonzero only when the
        #: registry minted a key, so the probe below never sees None
        self._temporal = machine.temporal
        # BIN/BINI codes are assigned at compile/load time (satellite of
        # the fastpath work): constructing thousands of Machines over one
        # program no longer re-walks every function.

    def arm_deadline(self, timeout_seconds: Optional[float]) -> None:
        """Arm (or disarm, with None) the wall-clock watchdog."""
        if timeout_seconds is None or timeout_seconds <= 0:
            self._deadline = 0.0
            self._timeout_seconds = 0.0
        else:
            self._timeout_seconds = timeout_seconds
            self._deadline = time.monotonic() + timeout_seconds

    # -- call entry --------------------------------------------------------------

    def call_function(self, name: str, args: List[int],
                      arg_bounds: List[Optional[Bounds]]
                      ) -> Tuple[int, Optional[Bounds]]:
        func = self.program.functions.get(name)
        if func is None:
            return self._call_builtin(name, args, arg_bounds)
        return self._run(func, args, arg_bounds)

    def _call_builtin(self, name: str, args: List[int],
                      arg_bounds: List[Optional[Bounds]]
                      ) -> Tuple[int, Optional[Bounds]]:
        builtin = self.machine.builtins.get(name)
        if builtin is None:
            raise LinkError(f"undefined function {name!r}")
        value, bounds, cycles, instructions = builtin(
            self.machine, args, arg_bounds)
        self.stats.base_instructions += instructions
        self.stats.builtin_instructions += instructions
        self.stats.cycles += cycles
        return value & U64, bounds

    # -- the main loop -------------------------------------------------------------

    def _run(self, func: IRFunction, args: List[int],
             arg_bounds: List[Optional[Bounds]]
             ) -> Tuple[int, Optional[Bounds]]:
        machine = self.machine
        memory = self.memory
        hierarchy = self.hierarchy
        stats = self.stats
        frame_base = machine.push_frame(func.frame_size)
        regs: List[int] = [0] * func.num_regs
        bnds: List[Optional[Bounds]] = [None] * func.num_regs
        for index, preg in enumerate(func.param_regs):
            if index < len(args):
                regs[preg] = args[index] & U64
                bnds[preg] = arg_bounds[index] \
                    if index < len(arg_bounds) else None

        instrs = func.instrs
        count = len(instrs)
        ip = 0
        base_i = 0       # base-ISA instructions
        promote_i = 0
        arith_i = 0
        bls_i = 0
        cycles = 0
        loads = 0
        stores = 0
        tracer = machine.tracer
        obs = machine.obs
        try:
            while ip < count:
                ins = instrs[ip]
                if tracer is not None:
                    tracer.record(func.name, ip, ins, regs)
                ip += 1
                self.executed += 1
                if self.executed > self._limit:
                    raise StepBudgetExceeded(
                        f"instruction limit exceeded "
                        f"({self.executed:,} > {self._limit:,})",
                        executed=self.executed, limit=self._limit,
                        pc=(func.name, ip - 1))
                if (self._deadline and not self.executed & 0xFFF
                        and time.monotonic() > self._deadline):
                    raise WorkloadTimeout(
                        f"wall-clock timeout after "
                        f"{self._timeout_seconds:g}s "
                        f"({self.executed:,} instructions executed, "
                        f"at {func.name}+{ip - 1})",
                        seconds=self._timeout_seconds,
                        executed=self.executed)
                op = ins.op

                if op == Op.BIN or op == Op.BINI:
                    base_i += 1
                    a = regs[ins.a]
                    b = ins.imm if op == Op.BINI else regs[ins.b]
                    code = ins.code
                    if code == 0:
                        regs[ins.dst] = (a + b) & U64
                    elif code == 1:
                        regs[ins.dst] = (a - b) & U64
                    elif code == 2:
                        cycles += _MUL_EXTRA + 1
                        regs[ins.dst] = (a * b) & U64
                    elif code == 13:   # slt
                        if ins.signed:
                            regs[ins.dst] = int(_signed(a) < _signed(b))
                        else:
                            regs[ins.dst] = int(a < b)
                    elif code == 14:   # sle
                        if ins.signed:
                            regs[ins.dst] = int(_signed(a) <= _signed(b))
                        else:
                            regs[ins.dst] = int(a <= b)
                    elif code == 11:
                        regs[ins.dst] = int(a == b)
                    elif code == 12:
                        regs[ins.dst] = int(a != b)
                    elif code == 3 or code == 4:   # div/rem
                        cycles += _DIV_EXTRA + 1
                        if b == 0:
                            raise SimTrap("division by zero")
                        sa, sb = (_signed(a), _signed(b)) if ins.signed \
                            else (a, b)
                        quotient = abs(sa) // abs(sb)
                        if (sa < 0) != (sb < 0):
                            quotient = -quotient
                        if code == 3:
                            regs[ins.dst] = quotient & U64
                        else:
                            regs[ins.dst] = (sa - quotient * sb) & U64
                    elif code == 5:
                        regs[ins.dst] = a & b
                    elif code == 6:
                        regs[ins.dst] = a | b
                    elif code == 7:
                        regs[ins.dst] = a ^ b
                    elif code == 8:
                        regs[ins.dst] = (a << (b & 63)) & U64
                    elif code == 9:
                        regs[ins.dst] = a >> (b & 63)
                    elif code == 10:
                        regs[ins.dst] = (_signed(a) >> (b & 63)) & U64
                    elif code == 15:
                        regs[ins.dst] = (-a) & U64
                    elif code == 16:
                        regs[ins.dst] = int(a == 0)
                    elif code == 17:
                        regs[ins.dst] = (~a) & U64
                    elif code == 18:
                        regs[ins.dst] = int((a & ADDRESS_MASK)
                                            == (b & ADDRESS_MASK))
                    elif code == 19:
                        regs[ins.dst] = int((a & ADDRESS_MASK)
                                            != (b & ADDRESS_MASK))
                    elif code == 20:
                        regs[ins.dst] = int((a & ADDRESS_MASK)
                                            < (b & ADDRESS_MASK))
                    elif code == 21:
                        regs[ins.dst] = int((a & ADDRESS_MASK)
                                            <= (b & ADDRESS_MASK))
                    elif code == 22:
                        regs[ins.dst] = ((a & ADDRESS_MASK)
                                         - (b & ADDRESS_MASK)) & U64
                    else:  # pragma: no cover
                        raise SimTrap(f"bad BIN code {code}")
                    bnds[ins.dst] = None
                    cycles += 1

                elif op == Op.LOAD:
                    base_i += 1
                    loads += 1
                    base_val = regs[ins.a]
                    if base_val >> 62:
                        raise PoisonTrap(
                            "load through poisoned pointer", base_val,
                            pc=(func.name, ip - 1))
                    ea = ((base_val & ADDRESS_MASK) + ins.imm) & ADDRESS_MASK
                    bound = bnds[ins.a]
                    size = ins.size
                    if bound is not None:
                        stats.implicit_checks += 1
                        passed = (bound.lower <= ea
                                  and ea + size <= bound.upper)
                        if obs is not None:
                            obs.emit(CheckEvent(
                                (func.name, ip - 1), "load", False, ea,
                                size, passed))
                        if not passed:
                            stats.check_failures += 1
                            raise BoundsTrap(
                                "load out of bounds", base_val,
                                bound.lower, bound.upper,
                                pc=(func.name, ip - 1))
                        tkey = bound.tkey
                        if tkey:
                            stats.temporal_checks += 1
                            t_entry = self._temporal.probe(bound.tbase)
                            if (t_entry is None or not t_entry[1]
                                    or t_entry[0] != tkey):
                                stats.temporal_failures += 1
                                raise temporal_violation(
                                    "load", base_val, bound.tbase, tkey,
                                    t_entry, pc=(func.name, ip - 1))
                    cycles += 1 + hierarchy.access_cycles(ea, size, False)
                    value = memory.load_int(ea, size, ins.signed)
                    regs[ins.dst] = value & U64
                    bnds[ins.dst] = None

                elif op == Op.STORE:
                    base_i += 1
                    stores += 1
                    base_val = regs[ins.a]
                    if base_val >> 62:
                        raise PoisonTrap(
                            "store through poisoned pointer", base_val,
                            pc=(func.name, ip - 1))
                    ea = ((base_val & ADDRESS_MASK) + ins.imm) & ADDRESS_MASK
                    bound = bnds[ins.a]
                    size = ins.size
                    if bound is not None:
                        stats.implicit_checks += 1
                        passed = (bound.lower <= ea
                                  and ea + size <= bound.upper)
                        if obs is not None:
                            obs.emit(CheckEvent(
                                (func.name, ip - 1), "store", False, ea,
                                size, passed))
                        if not passed:
                            stats.check_failures += 1
                            raise BoundsTrap(
                                "store out of bounds", base_val,
                                bound.lower, bound.upper,
                                pc=(func.name, ip - 1))
                        tkey = bound.tkey
                        if tkey:
                            stats.temporal_checks += 1
                            t_entry = self._temporal.probe(bound.tbase)
                            if (t_entry is None or not t_entry[1]
                                    or t_entry[0] != tkey):
                                stats.temporal_failures += 1
                                raise temporal_violation(
                                    "store", base_val, bound.tbase, tkey,
                                    t_entry, pc=(func.name, ip - 1))
                    cycles += 1 + hierarchy.access_cycles(ea, size, True)
                    memory.store_int(ea, regs[ins.b], size)

                elif op == Op.MV:
                    base_i += 1
                    cycles += 1
                    regs[ins.dst] = regs[ins.a]
                    bnds[ins.dst] = bnds[ins.a]

                elif op == Op.LI:
                    base_i += 1
                    cycles += 1
                    regs[ins.dst] = ins.imm & U64
                    bnds[ins.dst] = None

                elif op == Op.BZ:
                    base_i += 1
                    cycles += 1
                    if regs[ins.a] == 0:
                        ip = ins.target

                elif op == Op.BNZ:
                    base_i += 1
                    cycles += 1
                    if regs[ins.a] != 0:
                        ip = ins.target

                elif op == Op.JMP:
                    base_i += 1
                    cycles += 1
                    ip = ins.target

                elif op == Op.TRUNC:
                    base_i += 1
                    cycles += 1
                    bits = ins.size * 8
                    value = regs[ins.a] & ((1 << bits) - 1)
                    if ins.signed and value >> (bits - 1):
                        value |= (U64 >> bits << bits)
                    regs[ins.dst] = value
                    bnds[ins.dst] = None

                elif op == Op.FRAME:
                    base_i += 1
                    cycles += 1
                    regs[ins.dst] = frame_base + ins.imm
                    bnds[ins.dst] = None

                elif op == Op.GLOB:
                    base_i += 1
                    cycles += 1
                    try:
                        regs[ins.dst] = self.symbols[ins.name]
                    except KeyError:
                        raise LinkError(f"undefined symbol {ins.name!r}")
                    bnds[ins.dst] = None

                elif op == Op.CALL or op == Op.CALLPTR:
                    base_i += 1
                    cycles += 1 + _CALL_EXTRA
                    call_args = [regs[r] for r in ins.args]
                    call_bounds = [bnds[r] for r in ins.args]
                    if op == Op.CALL:
                        name = ins.name
                    else:
                        address = regs[ins.a] & ADDRESS_MASK
                        name = self.functions_by_address.get(address)
                        if name is None:
                            raise SimTrap(
                                f"indirect call to non-function address "
                                f"0x{address:x}")
                    # Flush local counters before recursing so nested
                    # runs see consistent global stats.
                    stats.base_instructions += base_i
                    stats.promote_instructions += promote_i
                    stats.ifp_arith_instructions += arith_i
                    stats.bounds_ls_instructions += bls_i
                    stats.cycles += cycles
                    stats.loads += loads
                    stats.stores += stores
                    base_i = promote_i = arith_i = bls_i = 0
                    cycles = loads = stores = 0
                    value, rbounds = self.call_function(
                        name, call_args, call_bounds)
                    if ins.dst >= 0:
                        regs[ins.dst] = value
                        bnds[ins.dst] = rbounds
                    else:
                        pass

                elif op == Op.RET:
                    base_i += 1
                    cycles += 1 + _CALL_EXTRA
                    if ins.a >= 0:
                        return_value = regs[ins.a]
                        return_bounds = bnds[ins.a]
                    else:
                        return_value, return_bounds = 0, None
                    return return_value, return_bounds

                elif op == Op.PROMOTE:
                    promote_i += 1
                    if self._no_promote:
                        cycles += 1
                        regs[ins.dst] = regs[ins.a]
                        bnds[ins.dst] = None
                    else:
                        value = regs[ins.a]
                        if obs is not None:
                            # Unit-level events (metadata fetch, MAC,
                            # narrowing) inherit this site attribution.
                            obs.site = (func.name, ip - 1)
                        try:
                            result = self.ifp.promote(value)
                        except TemporalViolation as trap:
                            # The unit has no notion of guest pc; stamp
                            # the promote site so forensics can anchor
                            # the report.
                            trap.pc = (func.name, ip - 1)
                            raise
                        cycles += result.cycles
                        regs[ins.dst] = result.pointer
                        bnds[ins.dst] = result.bounds
                        if obs is not None:
                            obs.emit(PromoteEvent(
                                obs.site, value,
                                _SCHEME_NAMES[(value >> 60) & 3],
                                result.outcome.value, result.narrowed,
                                result.cycles))
                            obs.site = None

                elif op == Op.IFPADD:
                    arith_i += 1
                    cycles += 1
                    value = regs[ins.a]
                    delta = ins.imm if ins.b < 0 else _signed(regs[ins.b])
                    address = ((value & ADDRESS_MASK) + delta) & ADDRESS_MASK
                    tag = value >> 48
                    if tag == 0:
                        regs[ins.dst] = address
                    else:
                        regs[ins.dst] = self._ifpadd_tagged(
                            value, address, tag, bnds[ins.a])
                    bnds[ins.dst] = bnds[ins.a]

                elif op == Op.IFPBND:
                    arith_i += 1
                    cycles += 1
                    value = regs[ins.a]
                    size = ins.imm if ins.b < 0 else regs[ins.b]
                    address = value & ADDRESS_MASK
                    regs[ins.dst] = value
                    bnds[ins.dst] = Bounds(address, address + size)

                elif op == Op.IFPIDX:
                    arith_i += 1
                    cycles += 1
                    value = regs[ins.a]
                    scheme = (value >> 60) & 3
                    if scheme == 1:
                        width = self._local_sub_bits
                    elif scheme == 2:
                        width = self._subheap_sub_bits
                    else:
                        width = 0
                    if width:
                        mask = (1 << width) - 1
                        field_val = (value >> 48) & mask
                        field_val = (field_val + ins.imm) & mask
                        value = (value & ~(mask << 48)) | (field_val << 48)
                    regs[ins.dst] = value
                    bnds[ins.dst] = bnds[ins.a]

                elif op == Op.IFPCHK:
                    arith_i += 1
                    cycles += 1
                    value = regs[ins.a]
                    bound = bnds[ins.a]
                    if bound is not None:
                        address = value & ADDRESS_MASK
                        stats.implicit_checks += 1
                        passed = (bound.lower <= address
                                  and address + ins.imm <= bound.upper)
                        if obs is not None:
                            obs.emit(CheckEvent(
                                (func.name, ip - 1), "ifpchk", True,
                                address, ins.imm, passed))
                        if not passed:
                            stats.check_failures += 1
                            value = (value & ~(3 << 62)) | (1 << 62)
                    regs[ins.dst] = value
                    bnds[ins.dst] = bound

                elif op == Op.IFPEXTRACT:
                    arith_i += 1
                    cycles += 1
                    value = regs[ins.a]
                    bound = bnds[ins.a]
                    if bound is not None:
                        address = value & ADDRESS_MASK
                        if bound.lower <= address < bound.upper:
                            poison = 0
                        else:
                            poison = 1
                        value = (value & ~(3 << 62)) | (poison << 62)
                    regs[ins.dst] = value
                    bnds[ins.dst] = None

                elif op == Op.IFPMD:
                    arith_i += 1
                    cycles += 1
                    regs[ins.dst] = ((regs[ins.a] & ADDRESS_MASK)
                                     | (ins.imm << 48))
                    bnds[ins.dst] = None
                    if ins.name:
                        stats.local_objects += 1
                        if ins.name == "local+lt":
                            stats.local_objects_lt += 1
                        if obs is not None:
                            obs.site = (func.name, ip - 1)
                            obs.scheme_assigned(
                                "local", regs[ins.dst], 0,
                                ins.name == "local+lt")
                            obs.site = None

                elif op == Op.IFPMAC:
                    arith_i += 1
                    cycles += 1 + self.machine.config.ifp.mac_cycles
                    regs[ins.dst] = self.ifp.mac.compute(
                        (regs[ins.a] & ADDRESS_MASK, ins.imm, regs[ins.b]))
                    bnds[ins.dst] = None

                elif op == Op.LDBND:
                    bls_i += 1
                    if obs is not None:
                        obs.emit(BoundsSpillEvent((func.name, ip - 1),
                                                  False))
                    ea = (regs[ins.a] & ADDRESS_MASK) + ins.imm
                    cycles += 1 + hierarchy.access_cycles(ea, 16, False)
                    if not memory.is_mapped(ea, 16):
                        # On-demand bounds-table page (MPX-style kernel
                        # allocation); unwritten entries read as cleared.
                        memory.map_range(ea, 16)
                    lower = memory.load_u64(ea)
                    upper = memory.load_u64(ea + 8)
                    bnds[ins.dst] = None if lower == 0 and upper == 0 \
                        else Bounds(lower, upper)

                elif op == Op.STBND:
                    bls_i += 1
                    if obs is not None:
                        obs.emit(BoundsSpillEvent((func.name, ip - 1),
                                                  True))
                    ea = (regs[ins.a] & ADDRESS_MASK) + ins.imm
                    cycles += 1 + hierarchy.access_cycles(ea, 16, True)
                    if not memory.is_mapped(ea, 16):
                        memory.map_range(ea, 16)
                    bound = bnds[ins.b]
                    if bound is None:
                        memory.store_u64(ea, 0)
                        memory.store_u64(ea + 8, 0)
                    else:
                        memory.store_u64(ea, bound.lower)
                        memory.store_u64(ea + 8, bound.upper)

                else:  # pragma: no cover
                    raise SimTrap(f"unimplemented opcode {op}")

            raise SimTrap(f"function {func.name} fell off the end")
        finally:
            stats.base_instructions += base_i
            stats.promote_instructions += promote_i
            stats.ifp_arith_instructions += arith_i
            stats.bounds_ls_instructions += bls_i
            stats.cycles += cycles
            stats.loads += loads
            stats.stores += stores
            machine.pop_frame(func.frame_size)

    # -- tagged pointer arithmetic helper ---------------------------------------

    def _ifpadd_tagged(self, value: int, new_address: int, tag: int,
                       bound: Optional[Bounds]) -> int:
        """Tag maintenance for ``ifpadd`` on a tagged pointer."""
        poison = tag >> 14
        scheme = (tag >> 12) & 3
        payload = tag & 0xFFF
        if scheme == 1:  # local offset: re-encode the granule offset
            old_address = value & ADDRESS_MASK
            gmask = self._granule_mask
            gshift = self._granule_shift
            offset = (payload >> self._local_sub_bits) \
                & ((1 << self._local_off_bits) - 1)
            metadata = (old_address & ~gmask) + (offset << gshift)
            delta = metadata - (new_address & ~gmask)
            if delta >= 0:
                new_offset = delta >> gshift
                if new_offset < (1 << self._local_off_bits):
                    sub_mask = (1 << self._local_sub_bits) - 1
                    payload = ((new_offset << self._local_sub_bits)
                               | (payload & sub_mask))
                else:
                    poison = 2  # wildly out of bounds: irrecoverable
            else:
                poison = 2
        if poison < 2 and bound is not None:
            poison = 0 if bound.lower <= new_address < bound.upper else 1
        return ((poison << 62) | (scheme << 60) | (payload << 48)
                | new_address)
