"""The simulated machine and its run harness."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache import CacheHierarchy, HierarchyConfig
from repro.compiler.ir import IRProgram
from repro.errors import GuestExit, ReproError, SimTrap, WorkloadTimeout
from repro.ifp.config import IFPConfig, DEFAULT_CONFIG
from repro.ifp.unit import IFPUnit
from repro.mem import Memory
from repro.mem.layout import DEFAULT_LAYOUT, AddressSpaceLayout
from repro.resil.policy import DEFAULT_POLICY, DegradationPolicy
from repro.vm.loader import LoadedImage, load_program
from repro.vm.stats import RunStats


@dataclass(frozen=True)
class MachineConfig:
    """Machine-level knobs (hardware config + harness limits)."""

    hierarchy: HierarchyConfig = HierarchyConfig()
    ifp: IFPConfig = DEFAULT_CONFIG
    layout: AddressSpaceLayout = DEFAULT_LAYOUT
    #: promote executes as a NOP (the paper's "no-promote" build)
    no_promote: bool = False
    mac_key: int = 0x1F9A7C0FFEE
    #: hard cap on executed instructions (runaway guard)
    max_instructions: int = 500_000_000
    #: glibc strlen reads whole words — the over-read the paper hit in bc
    strlen_word_reads: bool = True
    #: what happens when fixed-size metadata resources run out
    #: (see repro.resil.policy): degrade to untagged pointers or trap
    policy: DegradationPolicy = DEFAULT_POLICY
    #: wall-clock watchdog for one run (seconds; None disables).  Checked
    #: coarsely by the interpreter; raises WorkloadTimeout, not a trap.
    wall_clock_timeout: Optional[float] = None
    #: temporal lock-and-key policy (repro.temporal): "off" reserves no
    #: tag bits and builds no registry (zero cost); "check" arms
    #: promote/deref/free lock==key checks while allocators reuse
    #: addresses normally; "quarantine" additionally suppresses address
    #: reuse in the allocators so stale keys can never alias fresh ones
    temporal: str = "off"
    #: execution engine: "auto" picks the closure-compiled fastpath —
    #: including under an armed tracer/observer/fault injector, for
    #: which it compiles an instrumented variant with inline emit sites
    #: (see repro.vm.fastpath) — falling back to the reference
    #: interpreter only when :meth:`Machine.fastpath_reasons` reports an
    #: instrument the compiler cannot honour; uninstrumented hot
    #: functions additionally graduate to the whole-function superblock
    #: tier.  "reference" forces the reference interpreter; "fastpath"
    #: forces the block-fused fastpath with the superblock tier off;
    #: "superblock" forces whole-function translation on first call
    #: (and errors when a fastpath_reasons fallback applies).  All
    #: engines are byte-identical in every simulated observable,
    #: including the emitted event stream — see DESIGN.md §8.
    engine: str = "auto"


@dataclass
class RunResult:
    """Outcome of one guest-program run."""

    exit_code: Optional[int]
    trap: Optional[SimTrap]
    stats: RunStats
    output: str

    @property
    def ok(self) -> bool:
        return self.trap is None

    @property
    def detected_violation(self) -> bool:
        """True when the run ended in a memory-safety trap — how the
        Juliet evaluation scores a detection."""
        return self.trap is not None


class Machine:
    """One loaded program plus all architectural and runtime state."""

    def __init__(self, program: IRProgram,
                 config: MachineConfig = MachineConfig()):
        self.program = program
        self.config = config
        self.layout = config.layout
        self.memory = Memory()
        self.hierarchy = config.hierarchy.build()
        if config.temporal not in ("off", "check", "quarantine"):
            raise ReproError(
                f"unknown temporal policy {config.temporal!r} "
                "(expected off|check|quarantine)")
        ifp_config = config.ifp
        if config.temporal != "off":
            from repro.temporal import TemporalRegistry
            if ifp_config.temporal_key_bits == 0:
                from dataclasses import replace as _replace
                ifp_config = _replace(ifp_config, temporal_key_bits=2)
            #: allocation-lock registry; allocator builtins mint/release
            #: through it and both engines probe it at deref sites
            self.temporal = TemporalRegistry(
                key_bits=ifp_config.temporal_key_bits)
        else:
            self.temporal = None
        self.ifp = IFPUnit(self.memory, self.hierarchy, ifp_config,
                           mac_key=config.mac_key)
        self.ifp.temporal = self.temporal
        self.stats = RunStats()
        self.image: LoadedImage = load_program(program, self.memory,
                                               self.layout)
        # Tell the IFP unit where the loader placed the compile-time
        # layout tables, enabling its store-snooped walk cache.
        self.ifp.set_layout_envelope(self.image.layout_tables_base,
                                     self.image.layout_tables_end)
        self.output_parts: List[str] = []
        self.rand_state = 0x2545F491
        self.clock_cycles_base = 0
        #: optional execution tracer (see repro.debug.attach_tracer)
        self.tracer = None
        #: optional observer (see repro.obs.attach_observer); None keeps
        #: every instrumented site on its zero-cost disabled path
        self.obs = None
        #: engine the last ``run`` resolved to
        #: ("fastpath"|"superblock"|"reference");
        #: None before the first run.  Telemetry labels use this.
        self.engine_used: Optional[str] = None

        # Stack management (grows down; pages mapped on demand).
        self.stack_top = self.layout.stack_top
        self.sp = self.stack_top
        self._stack_mapped_low = self.stack_top

        # Runtime services (allocators, global table, getptr registry) are
        # attached here by repro.runtime.builtins.install().
        from repro.runtime.builtins import install as _install_runtime
        self.builtins = _install_runtime(self)

        # Interpreter created lazily (needs self fully built).
        from repro.vm.interp import Interpreter
        self.interp = Interpreter(self)
        #: closure-compiled fast engine, built on first use
        self._fast = None

    # -- stack ---------------------------------------------------------------

    def push_frame(self, frame_size: int) -> int:
        """Allocate a stack frame; returns the frame base address."""
        self.sp -= frame_size
        if self.sp < self.layout.stack_limit:
            raise SimTrap("stack overflow")
        if self.sp < self._stack_mapped_low:
            page = self.memory.page_size
            new_low = self.sp & ~(page - 1)
            self.memory.map_range(new_low, self._stack_mapped_low - new_low)
            self._stack_mapped_low = new_low
        return self.sp

    def pop_frame(self, frame_size: int) -> None:
        self.sp += frame_size

    # -- io ---------------------------------------------------------------------

    def write_output(self, text: str) -> None:
        self.output_parts.append(text)

    @property
    def output(self) -> str:
        return "".join(self.output_parts)

    # -- rand (deterministic LCG, rand(3)-compatible range) -----------------------

    def rand(self) -> int:
        self.rand_state = (self.rand_state * 1103515245 + 12345) & 0x7FFFFFFF
        return self.rand_state

    def srand(self, seed: int) -> None:
        self.rand_state = seed & 0x7FFFFFFF or 1

    # -- engine selection ---------------------------------------------------------

    def _instrumented(self) -> bool:
        """True when any instrument is armed (tracer, observer, or
        fault injector).  Instrumented runs still use the fastpath —
        the translator compiles an instrumented variant — unless
        :meth:`fastpath_reasons` reports an instrument it cannot
        honour."""
        ifp = self.ifp
        return (self.tracer is not None or self.obs is not None
                or ifp.obs is not None or ifp.faults is not None
                or ifp.port.faults is not None)

    def fastpath_reasons(self) -> List[str]:
        """Why this machine would fall back to the reference engine.

        Empty (the overwhelmingly common case) means the fastpath can
        honour everything that is armed: tracers compile to inline
        ``record`` calls, observers to inline guarded emits, and fault
        injectors live in the shared IFP unit, so none of them force the
        reference interpreter anymore.  A non-empty list names armed
        instruments that don't speak the standard protocol (a tracer
        without ``record``, an observer without ``emit``/``site``) —
        the translator cannot bind their emit sites, so ``engine=auto``
        degrades to the reference interpreter, which duck-types the
        same calls one instruction at a time.
        """
        reasons: List[str] = []
        tracer = self.tracer
        if tracer is not None \
                and not callable(getattr(tracer, "record", None)):
            reasons.append(
                f"tracer {type(tracer).__name__} has no record() method")
        obs = self.obs
        if obs is not None \
                and (not callable(getattr(obs, "emit", None))
                     or not hasattr(obs, "site")):
            reasons.append(
                f"observer {type(obs).__name__} lacks the emit()/site "
                f"protocol")
        return reasons

    def select_interp(self):
        """Resolve ``config.engine`` to the interpreter for this run."""
        engine = self.config.engine
        if engine == "reference":
            return self.interp
        if engine in ("auto", "fastpath", "superblock"):
            reasons = self.fastpath_reasons()
            if reasons:
                if engine != "auto":
                    raise ReproError(
                        f"engine={engine!r} cannot honour the armed "
                        "instruments: " + "; ".join(reasons)
                        + " — use engine='auto' (it falls back to the "
                        "reference interpreter) or detach the instrument")
                return self.interp
            return self._fastpath()
        raise ReproError(f"unknown engine {engine!r} "
                         "(expected auto|fastpath|superblock|reference)")

    def _fastpath(self):
        if self._fast is None:
            from repro.vm.fastpath import FastInterpreter
            self._fast = FastInterpreter(self)
        return self._fast

    # -- run harness ---------------------------------------------------------------

    def run(self, entry: Optional[str] = None,
            timeout_seconds: Optional[float] = None) -> RunResult:
        """Execute the program to completion, trap, or instruction limit.

        ``timeout_seconds`` (or ``config.wall_clock_timeout``) arms the
        wall-clock watchdog; on expiry a :class:`WorkloadTimeout`
        propagates (it is *not* a guest trap, so it is never reported as
        a detection) with finalized stats attached.
        """
        entry = entry or self.program.entry
        timeout = (timeout_seconds if timeout_seconds is not None
                   else self.config.wall_clock_timeout)
        interp = self.select_interp()
        if interp is self.interp:
            self.engine_used = "reference"
        elif self.config.engine == "superblock":
            self.engine_used = "superblock"
        else:
            self.engine_used = "fastpath"
        if self.obs is not None:
            # let observability consumers label everything they export
            # with the engine that actually produced it
            try:
                self.obs.engine = self.engine_used
            except AttributeError:  # slotted custom observer
                pass
        interp.arm_deadline(timeout)
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(40_000)
        exit_code: Optional[int] = None
        trap: Optional[SimTrap] = None
        try:
            if "__init_globals" in self.program.functions:
                interp.call_function("__init_globals", [], [])
            value, _bounds = interp.call_function(entry, [], [])
            exit_code = _as_exit_code(value)
        except GuestExit as exc:
            exit_code = exc.code
        except SimTrap as exc:
            trap = exc
        except WorkloadTimeout as exc:
            self._finalize_stats()
            exc.stats = self.stats
            raise
        finally:
            sys.setrecursionlimit(old_limit)
        self._finalize_stats()
        if trap is not None and self.obs is not None:
            # Machine state (memory, metadata, tracer) is still live, so
            # forensics can decode the offending pointer in place.
            self.obs.on_trap(self, trap)
        return RunResult(exit_code, trap, self.stats, self.output)

    def _finalize_stats(self) -> None:
        stats = self.stats
        stats.ifp = self.ifp.stats
        stats.l1d_accesses = self.hierarchy.l1d_accesses
        stats.l1d_misses = self.hierarchy.l1d_misses
        stats.peak_mapped_bytes = self.memory.peak_mapped_bytes


def _as_exit_code(value: int) -> int:
    return value & 0xFF


def run_source(source: str, options=None,
               machine_config: Optional[MachineConfig] = None) -> RunResult:
    """Convenience: compile mini-C source and run it."""
    from repro.compiler import CompilerOptions, compile_source
    options = options or CompilerOptions.baseline()
    program = compile_source(source, options)
    config = machine_config or MachineConfig(no_promote=options.no_promote)
    if options.no_promote and not config.no_promote:
        from dataclasses import replace
        config = replace(config, no_promote=True)
    return Machine(program, config).run()
