"""The simulated machine: a cycle-approximate functional simulator.

Plays the role of the paper's modified CVA6 FPGA prototype plus its
modified Linux: executes compiled IR programs, models an L1 data cache and
per-instruction cycle costs, implements the In-Fat Pointer ISA extension
(promote via :class:`repro.ifp.IFPUnit`, implicit poison/bounds checks in
the load-store path), and collects the dynamic statistics the paper's
evaluation reports.
"""

from repro.vm.machine import Machine, MachineConfig, RunResult
from repro.vm.stats import RunStats

__all__ = ["Machine", "MachineConfig", "RunResult", "RunStats"]
