"""Recursive-descent parser for mini-C.

Produces an untyped :class:`~repro.lang.astnodes.TranslationUnit`; semantic
analysis (:mod:`repro.lang.sema`) types it.  The grammar is a C subset:

* declarations: ``struct`` definitions, ``typedef``, globals with
  initialisers, function definitions and prototypes;
* declarators: pointers (``*``), arrays (``[N]`` with constant
  expressions), and function pointers (``ret (*name)(params)``);
* the full C expression grammar minus comma-expressions and floats.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.lang import astnodes as ast
from repro.lang.ctypes import (
    ArrayType, CHAR, CType, FunctionType, INT, LONG, PointerType, SHORT,
    StructType, UCHAR, UINT, ULONG, UnionType, USHORT, VOID,
)
from repro.lang.lexer import Token, tokenize

#: Tokens that can begin a type specifier.
_TYPE_KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "unsigned", "signed",
    "const", "struct", "union", "static", "extern",
})

_ASSIGN_OPS = frozenset({
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
})

#: Binary operator precedence levels, loosest first.
_BINARY_LEVELS: List[List[str]] = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C source into a translation unit."""
    return _Parser(tokenize(source)).parse_unit()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.structs: Dict[str, StructType] = {}
        self.typedefs: Dict[str, CType] = {}
        self.unit = ast.TranslationUnit()

    # -- token plumbing -----------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.tok
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}",
                             token.line, token.col)
        return self.next()

    def accept(self, text: str) -> bool:
        if self.tok.text == text:
            self.next()
            return True
        return False

    def expect_ident(self) -> Token:
        token = self.tok
        if token.kind != "ident":
            raise ParseError(f"expected identifier, found {token.text!r}",
                             token.line, token.col)
        return self.next()

    # -- top level -----------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        while self.tok.kind != "eof":
            if self.tok.text == "typedef":
                self._parse_typedef()
            elif self.tok.text in ("struct", "union") \
                    and self.peek().kind == "ident" \
                    and self.peek(2).text in ("{", ";"):
                self._parse_struct_decl()
            else:
                self._parse_global_or_function()
        return self.unit

    def _parse_typedef(self) -> None:
        self.expect("typedef")
        base = self._parse_type_specifier()
        name_token, full_type = self._parse_declarator(base)
        self.expect(";")
        self.typedefs[name_token.text] = full_type

    def _parse_struct_decl(self) -> None:
        struct_type = self._parse_struct_specifier()
        self.expect(";")
        del struct_type  # registered as a side effect

    def _parse_global_or_function(self) -> None:
        line = self.tok.line
        base = self._parse_type_specifier()
        if self.accept(";"):
            return  # bare 'struct S { ... };' handled via specifier
        name_token, full_type = self._parse_declarator(base)
        if isinstance(full_type, FunctionType):
            self._parse_function_rest(name_token, full_type, line)
            return
        # Global variable (possibly a list: int a, b;).
        self._finish_global(name_token, full_type, line)
        while self.accept(","):
            name_token, next_type = self._parse_declarator(base)
            self._finish_global(name_token, next_type, self.tok.line)
        self.expect(";")

    def _finish_global(self, name_token: Token, var_type: CType,
                       line: int) -> None:
        init: Optional[ast.Expr] = None
        init_list: Optional[List[ast.Expr]] = None
        if self.accept("="):
            if self.tok.text == "{":
                init_list = self._parse_init_list()
            else:
                init = self.parse_assignment()
        self.unit.globals.append(ast.GlobalVar(
            name_token.text, var_type, init, init_list, line))

    def _parse_function_rest(self, name_token: Token,
                             func_type: FunctionType, line: int) -> None:
        params = [ast.Param(param_name, param_type, line)
                  for param_name, param_type
                  in zip(self._last_param_names, func_type.params)]
        body: Optional[ast.Block] = None
        if self.tok.text == "{":
            body = self.parse_block()
        else:
            self.expect(";")
        self.unit.functions.append(ast.FuncDef(
            name_token.text, func_type.ret, params, body, line,
            func_type.varargs))

    def _parse_init_list(self) -> List[ast.Expr]:
        self.expect("{")
        items: List[ast.Expr] = []
        while not self.accept("}"):
            if self.tok.text == "{":
                # Nested brace groups are flattened (row-major).
                items.extend(self._parse_init_list())
            else:
                items.append(self.parse_assignment())
            if self.tok.text != "}":
                self.expect(",")
        return items

    # -- types ----------------------------------------------------------------

    def looks_like_type(self) -> bool:
        token = self.tok
        if token.kind == "keyword" and token.text in _TYPE_KEYWORDS:
            return True
        return token.kind == "ident" and token.text in self.typedefs

    def _parse_type_specifier(self) -> CType:
        """Parse a base type: int kinds / void / struct / typedef name."""
        while self.tok.text in ("const", "static", "extern"):
            self.next()
        token = self.tok
        if token.text in ("struct", "union"):
            return self._parse_struct_specifier()
        if token.kind == "ident" and token.text in self.typedefs:
            self.next()
            return self.typedefs[token.text]
        signedness: Optional[bool] = None
        if token.text in ("unsigned", "signed"):
            signedness = token.text == "signed"
            self.next()
        base = self.tok
        if base.text in ("void", "char", "short", "int", "long"):
            self.next()
            if base.text == "long":
                self.accept("long")  # 'long long' == long
                self.accept("int")
            elif base.text == "short":
                self.accept("int")
            return self._int_type(base.text, signedness)
        if signedness is not None:
            return INT if signedness else UINT
        raise ParseError(f"expected type, found {base.text!r}",
                         base.line, base.col)

    @staticmethod
    def _int_type(name: str, signedness: Optional[bool]) -> CType:
        signed = True if signedness is None else signedness
        table = {
            ("void", True): VOID, ("void", False): VOID,
            ("char", True): CHAR, ("char", False): UCHAR,
            ("short", True): SHORT, ("short", False): USHORT,
            ("int", True): INT, ("int", False): UINT,
            ("long", True): LONG, ("long", False): ULONG,
        }
        return table[(name, signed)]

    def _parse_struct_specifier(self) -> StructType:
        keyword = self.next().text  # 'struct' or 'union'
        name_token = self.expect_ident()
        struct_type = self.structs.get(name_token.text)
        if struct_type is None:
            struct_type = (UnionType(name_token.text) if keyword == "union"
                           else StructType(name_token.text))
            self.structs[name_token.text] = struct_type
            self.unit.structs.append(struct_type)
        if self.tok.text == "{":
            self.next()
            members: List[Tuple[str, CType]] = []
            while not self.accept("}"):
                member_base = self._parse_type_specifier()
                while True:
                    member_token, member_type = \
                        self._parse_declarator(member_base)
                    members.append((member_token.text, member_type))
                    if not self.accept(","):
                        break
                self.expect(";")
            struct_type.define(members)
        return struct_type

    def _parse_declarator(self, base: CType) -> Tuple[Token, CType]:
        """Parse ``* ... name suffixes`` around a base type.

        Handles plain names, pointer stars, array suffixes, function
        parameter lists (direct functions), and the parenthesised
        function-pointer form ``(*name)(params)``.
        """
        while self.accept("*"):
            while self.tok.text == "const":
                self.next()
            base = PointerType(base)
        if self.tok.text == "(" and self.peek().text == "*":
            # Function pointer declarator: (*name)(params) [array suffix]
            self.expect("(")
            self.expect("*")
            name_token = self.expect_ident()
            array_counts = self._parse_array_suffixes()
            self.expect(")")
            params, varargs = self._parse_param_list()
            func = FunctionType(base, tuple(t for _n, t in params), varargs)
            declared: CType = PointerType(func)
            for count in reversed(array_counts):
                declared = ArrayType(declared, count)
            return name_token, declared
        name_token = self.expect_ident()
        if self.tok.text == "(":
            params, varargs = self._parse_param_list()
            self._last_param_names = [n for n, _t in params]
            return name_token, FunctionType(
                base, tuple(t for _n, t in params), varargs)
        declared = base
        for count in reversed(self._parse_array_suffixes()):
            declared = ArrayType(declared, count)
        return name_token, declared

    def _parse_array_suffixes(self) -> List[int]:
        counts: List[int] = []
        while self.accept("["):
            counts.append(self._parse_const_int())
            self.expect("]")
        return counts

    def _parse_param_list(self) -> Tuple[List[Tuple[str, CType]], bool]:
        self.expect("(")
        params: List[Tuple[str, CType]] = []
        varargs = False
        if self.accept(")"):
            return params, varargs
        if self.tok.text == "void" and self.peek().text == ")":
            self.next()
            self.expect(")")
            return params, varargs
        while True:
            if self.accept("..."):
                varargs = True
                break
            param_base = self._parse_type_specifier()
            while self.accept("*"):
                param_base = PointerType(param_base)
            if self.tok.text in (",", ")"):
                param_name = f"__anon{len(params)}"
                param_type: CType = param_base
            elif self.tok.text == "(" and self.peek().text == "*":
                # Function-pointer parameter.
                self.expect("(")
                self.expect("*")
                param_name = self.expect_ident().text
                self.expect(")")
                inner_params, inner_varargs = self._parse_param_list()
                param_type = PointerType(FunctionType(
                    param_base, tuple(t for _n, t in inner_params),
                    inner_varargs))
            else:
                name_token = self.expect_ident()
                param_name = name_token.text
                param_type = param_base
                for count in reversed(self._parse_array_suffixes()):
                    param_type = ArrayType(param_type, count)
                # Array parameters decay to pointers.
                if isinstance(param_type, ArrayType):
                    param_type = PointerType(param_type.element)
            params.append((param_name, param_type))
            if not self.accept(","):
                break
        self.expect(")")
        return params, varargs

    def _parse_const_int(self) -> int:
        expr = self.parse_conditional()
        value = _fold(expr)
        if value is None:
            raise ParseError("expected constant expression",
                             self.tok.line, self.tok.col)
        return value

    # -- statements --------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect("{")
        body: List[ast.Stmt] = []
        while not self.accept("}"):
            body.append(self.parse_statement())
        return ast.Block(start.line, body)

    def parse_statement(self) -> ast.Stmt:
        token = self.tok
        if token.text == "{":
            return self.parse_block()
        if token.text == ";":
            self.next()
            return ast.Block(token.line, [])
        if token.text == "if":
            return self._parse_if()
        if token.text == "while":
            return self._parse_while()
        if token.text == "do":
            return self._parse_do_while()
        if token.text == "for":
            return self._parse_for()
        if token.text == "switch":
            return self._parse_switch()
        if token.text == "return":
            self.next()
            value = None if self.tok.text == ";" else self.parse_expression()
            self.expect(";")
            return ast.Return(token.line, value)
        if token.text == "break":
            self.next()
            self.expect(";")
            return ast.Break(token.line)
        if token.text == "continue":
            self.next()
            self.expect(";")
            return ast.Continue(token.line)
        if self.looks_like_type() and not (
                token.text in ("struct", "union")
                and self.peek(2).text == "{"):
            return self._parse_local_decl()
        expr = self.parse_expression()
        self.expect(";")
        return ast.ExprStmt(token.line, expr)

    def _parse_local_decl(self) -> ast.Stmt:
        line = self.tok.line
        base = self._parse_type_specifier()
        decls: List[ast.Stmt] = []
        while True:
            name_token, var_type = self._parse_declarator(base)
            init: Optional[ast.Expr] = None
            init_list: Optional[List[ast.Expr]] = None
            if self.accept("="):
                if self.tok.text == "{":
                    init_list = self._parse_init_list()
                else:
                    init = self.parse_assignment()
            decls.append(ast.VarDecl(line, name_token.text, var_type,
                                     init, init_list))
            if not self.accept(","):
                break
        self.expect(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(line, decls)

    def _parse_if(self) -> ast.Stmt:
        token = self.expect("if")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then = self.parse_statement()
        otherwise = self.parse_statement() if self.accept("else") else None
        return ast.If(token.line, cond, then, otherwise)

    def _parse_while(self) -> ast.Stmt:
        token = self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return ast.While(token.line, cond, body)

    def _parse_do_while(self) -> ast.Stmt:
        token = self.expect("do")
        body = self.parse_statement()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        self.expect(";")
        return ast.While(token.line, cond, body, check_after=True)

    def _parse_switch(self) -> ast.Stmt:
        token = self.expect("switch")
        self.expect("(")
        scrutinee = self.parse_expression()
        self.expect(")")
        self.expect("{")
        cases: list = []
        current = None
        seen_default = False
        while not self.accept("}"):
            if self.tok.text in ("case", "default"):
                is_default = self.next().text == "default"
                value = None
                if not is_default:
                    value = self._parse_const_int()
                else:
                    if seen_default:
                        raise ParseError("duplicate default label",
                                         self.tok.line, self.tok.col)
                    seen_default = True
                self.expect(":")
                current = ast.SwitchCase(value)
                cases.append(current)
            else:
                if current is None:
                    raise ParseError("statement before first case label",
                                     self.tok.line, self.tok.col)
                current.body.append(self.parse_statement())
        return ast.Switch(token.line, scrutinee, cases)

    def _parse_for(self) -> ast.Stmt:
        token = self.expect("for")
        self.expect("(")
        init: Optional[ast.Stmt] = None
        if self.tok.text != ";":
            if self.looks_like_type():
                init = self._parse_local_decl()
            else:
                init = ast.ExprStmt(self.tok.line, self.parse_expression())
                self.expect(";")
        else:
            self.next()
        cond = None if self.tok.text == ";" else self.parse_expression()
        self.expect(";")
        step = None if self.tok.text == ")" else self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return ast.For(token.line, init, cond, step, body)

    # -- expressions ---------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_conditional()
        if self.tok.text in _ASSIGN_OPS:
            op = self.next().text
            right = self.parse_assignment()
            return ast.Assign(left.line, None, False, op, left, right)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self.accept("?"):
            then = self.parse_expression()
            self.expect(":")
            otherwise = self.parse_conditional()
            return ast.Conditional(cond.line, None, False, cond, then,
                                   otherwise)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        left = self._parse_binary(level + 1)
        while self.tok.text in _BINARY_LEVELS[level] and self.tok.kind == "op":
            op = self.next().text
            right = self._parse_binary(level + 1)
            left = ast.Binary(left.line, None, False, op, left, right)
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.tok
        if token.text in ("-", "!", "~"):
            self.next()
            return ast.Unary(token.line, None, False, token.text,
                             self.parse_unary())
        if token.text == "+":
            self.next()
            return self.parse_unary()
        if token.text == "*":
            self.next()
            return ast.Deref(token.line, None, False, self.parse_unary())
        if token.text == "&":
            self.next()
            return ast.AddressOf(token.line, None, False, self.parse_unary())
        if token.text in ("++", "--"):
            self.next()
            target = self.parse_unary()
            return ast.IncDec(token.line, None, False, token.text, target,
                              postfix=False)
        if token.text == "sizeof":
            self.next()
            if self.tok.text == "(" and self._paren_is_type():
                self.expect("(")
                query = self._parse_abstract_type()
                self.expect(")")
                return ast.SizeofType(token.line, None, False, query)
            return ast.SizeofExpr(token.line, None, False, self.parse_unary())
        if token.text == "(" and self._paren_is_type():
            self.expect("(")
            target = self._parse_abstract_type()
            self.expect(")")
            return ast.Cast(token.line, None, False, target,
                            self.parse_unary())
        return self.parse_postfix()

    def _paren_is_type(self) -> bool:
        """Disambiguate '(' type ')' from a parenthesised expression."""
        after = self.peek()
        if after.kind == "keyword" and after.text in _TYPE_KEYWORDS:
            return True
        return after.kind == "ident" and after.text in self.typedefs

    def _parse_abstract_type(self) -> CType:
        base = self._parse_type_specifier()
        while self.accept("*"):
            base = PointerType(base)
        return base

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.tok
            if token.text == "[":
                self.next()
                index = self.parse_expression()
                self.expect("]")
                expr = ast.Index(token.line, None, False, expr, index)
            elif token.text == "(":
                args = self._parse_call_args()
                expr = ast.Call(token.line, None, False, expr, args)
            elif token.text == ".":
                self.next()
                name = self.expect_ident().text
                expr = ast.Member(token.line, None, False, expr, name, False)
            elif token.text == "->":
                self.next()
                name = self.expect_ident().text
                expr = ast.Member(token.line, None, False, expr, name, True)
            elif token.text in ("++", "--"):
                self.next()
                expr = ast.IncDec(token.line, None, False, token.text, expr,
                                  postfix=True)
            else:
                return expr

    def _parse_call_args(self) -> List[ast.Expr]:
        self.expect("(")
        args: List[ast.Expr] = []
        if not self.accept(")"):
            while True:
                args.append(self.parse_assignment())
                if not self.accept(","):
                    break
            self.expect(")")
        return args

    def parse_primary(self) -> ast.Expr:
        token = self.tok
        if token.kind == "int":
            self.next()
            return ast.IntLit(token.line, None, False, token.value)
        if token.text == "NULL":
            self.next()
            return ast.IntLit(token.line, None, False, 0)
        if token.kind == "string":
            self.next()
            text = token.text
            # C adjacent string-literal concatenation.
            while self.tok.kind == "string":
                text += self.next().text
            return ast.StrLit(token.line, None, False, text)
        if token.kind == "ident":
            self.next()
            return ast.Ident(token.line, None, False, token.text)
        if token.text == "(":
            self.next()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}",
                         token.line, token.col)


# ---------------------------------------------------------------------------
# Constant folding for array dimensions
# ---------------------------------------------------------------------------

def _fold(expr: ast.Expr) -> Optional[int]:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.SizeofType):
        return expr.query_type.size
    if isinstance(expr, ast.Unary):
        inner = _fold(expr.operand)
        if inner is None:
            return None
        return {"-": -inner, "~": ~inner, "!": int(not inner)}[expr.op]
    if isinstance(expr, ast.Binary):
        left, right = _fold(expr.left), _fold(expr.right)
        if left is None or right is None:
            return None
        ops = {
            "+": lambda: left + right, "-": lambda: left - right,
            "*": lambda: left * right, "/": lambda: left // right,
            "%": lambda: left % right, "<<": lambda: left << right,
            ">>": lambda: left >> right, "&": lambda: left & right,
            "|": lambda: left | right, "^": lambda: left ^ right,
        }
        handler = ops.get(expr.op)
        return handler() if handler else None
    return None
