"""The mini-C type system: sizes, alignment, and struct layout.

Sizes follow the LP64 model of the paper's RISC-V target: char 1, short 2,
int 4, long 8, pointers 8.  Struct members are aligned to their natural
alignment and the struct is padded to the alignment of its widest member —
identical to the C ABI rules the paper's layout tables describe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class CType:
    """Base class for all mini-C types."""

    size: int
    align: int

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_aggregate(self) -> bool:
        return self.is_struct or self.is_array

    @property
    def is_scalar(self) -> bool:
        return self.is_integer or self.is_pointer


@dataclass(frozen=True)
class VoidType(CType):
    size: int = 0
    align: int = 1

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    """An integer type of 1/2/4/8 bytes, signed or unsigned."""

    name: str
    size: int
    signed: bool

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.size

    @property
    def min_value(self) -> int:
        return -(1 << (self.size * 8 - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        bits = self.size * 8
        return (1 << (bits - 1)) - 1 if self.signed else (1 << bits) - 1

    def wrap(self, value: int) -> int:
        """Truncate a Python int to this type's representable range."""
        bits = self.size * 8
        value &= (1 << bits) - 1
        if self.signed and value >= (1 << (bits - 1)):
            value -= 1 << bits
        return value

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType
    size: int = 8
    align: int = 8

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType
    count: int

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.element.size * self.count

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.element.align

    def __str__(self) -> str:
        return f"{self.element}[{self.count}]"


@dataclass(frozen=True)
class StructField:
    name: str
    type: CType
    offset: int


class StructType(CType):
    """A struct with ABI-computed member offsets.

    Created empty (to allow self-referential pointers) and completed with
    :meth:`define`.
    """

    def __init__(self, name: str):
        self.name = name
        self.fields: Tuple[StructField, ...] = ()
        self._by_name: Dict[str, StructField] = {}
        self.size = 0
        self.align = 1
        self.complete = False

    def define(self, members: Sequence[Tuple[str, CType]]) -> "StructType":
        if self.complete:
            raise ValueError(f"struct {self.name} redefined")
        offset = 0
        align = 1
        fields: List[StructField] = []
        for member_name, member_type in members:
            if member_type.size == 0 and not member_type.is_function:
                raise ValueError(
                    f"struct {self.name}: member {member_name} has no size")
            member_align = member_type.align
            offset = (offset + member_align - 1) // member_align * member_align
            fields.append(StructField(member_name, member_type, offset))
            offset += member_type.size
            align = max(align, member_align)
        self.size = (offset + align - 1) // align * align if offset else align
        self.align = align
        self.fields = tuple(fields)
        self._by_name = {f.name: f for f in fields}
        self.complete = True
        return self

    def field(self, name: str) -> Optional[StructField]:
        return self._by_name.get(name)

    def __str__(self) -> str:
        return f"struct {self.name}"

    def __repr__(self) -> str:
        return f"StructType({self.name}, size={self.size})"


class UnionType(StructType):
    """A C union: every member at offset 0, size of the widest member.

    Unions get no layout-table subentries (members overlap, so there is
    no meaningful subobject tree below them) — narrowing stops at the
    union's own bounds, the conservative choice the paper's
    type-uncertainty guarantee requires.
    """

    def define(self, members: Sequence[Tuple[str, CType]]) -> "UnionType":
        if self.complete:
            raise ValueError(f"union {self.name} redefined")
        size = 0
        align = 1
        fields: List[StructField] = []
        for member_name, member_type in members:
            if member_type.size == 0 and not member_type.is_function:
                raise ValueError(
                    f"union {self.name}: member {member_name} has no size")
            fields.append(StructField(member_name, member_type, 0))
            size = max(size, member_type.size)
            align = max(align, member_type.align)
        self.size = (size + align - 1) // align * align if size else align
        self.align = align
        self.fields = tuple(fields)
        self._by_name = {f.name: f for f in fields}
        self.complete = True
        return self

    def __str__(self) -> str:
        return f"union {self.name}"


@dataclass(frozen=True)
class FunctionType(CType):
    """A function signature; only ever used behind a pointer or as a
    function's own type."""

    ret: CType
    params: Tuple[CType, ...]
    varargs: bool = False
    size: int = 0
    align: int = 1

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.varargs:
            params += ", ..."
        return f"{self.ret}({params})"


# -- the standard integer types ------------------------------------------------

VOID = VoidType()
CHAR = IntType("char", 1, True)
UCHAR = IntType("unsigned char", 1, False)
SHORT = IntType("short", 2, True)
USHORT = IntType("unsigned short", 2, False)
INT = IntType("int", 4, True)
UINT = IntType("unsigned int", 4, False)
LONG = IntType("long", 8, True)
ULONG = IntType("unsigned long", 8, False)

#: Pointer-to-void, the generic object pointer.
VOID_PTR = PointerType(VOID)
#: Pointer-sized integer used for pointer arithmetic results.
PTRDIFF = LONG


def common_int_type(left: IntType, right: IntType) -> IntType:
    """C's usual arithmetic conversions, restricted to our integer set."""
    size = max(left.size, right.size, 4)  # promote to at least int
    if size == left.size == right.size:
        signed = left.signed and right.signed
    elif left.size == right.size:
        signed = left.signed and right.signed
    else:
        wider = left if left.size > right.size else right
        signed = wider.signed
    for candidate in (INT, UINT, LONG, ULONG):
        if candidate.size == size and candidate.signed == signed:
            return candidate
    return ULONG


def decay(t: CType) -> CType:
    """Array-to-pointer and function-to-pointer decay."""
    if isinstance(t, ArrayType):
        return PointerType(t.element)
    if isinstance(t, FunctionType):
        return PointerType(t)
    return t
