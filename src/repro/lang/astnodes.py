"""AST node definitions for mini-C.

Expression nodes carry a ``ctype`` slot filled in by semantic analysis
(:mod:`repro.lang.sema`); the parser leaves it ``None``.  ``lvalue`` marks
expressions that denote storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lang.ctypes import CType


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0
    ctype: Optional[CType] = None
    lvalue: bool = False


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    text: str = ""
    #: label of the anonymous global the string is materialised into.
    symbol: str = ""


@dataclass
class Ident(Expr):
    name: str = ""
    #: 'local' | 'param' | 'global' | 'function' — set by sema.
    binding: str = ""


@dataclass
class Unary(Expr):
    op: str = ""           #: '-', '!', '~'
    operand: Expr = None


@dataclass
class Deref(Expr):
    pointer: Expr = None


@dataclass
class AddressOf(Expr):
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""           #: arithmetic/relational/logical operator
    left: Expr = None
    right: Expr = None


@dataclass
class Conditional(Expr):
    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None


@dataclass
class Assign(Expr):
    op: str = "="          #: '=' or a compound op like '+='
    target: Expr = None
    value: Expr = None


@dataclass
class IncDec(Expr):
    op: str = "++"
    target: Expr = None
    postfix: bool = True


@dataclass
class Call(Expr):
    func: Expr = None      #: Ident naming a function, or a pointer expr
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Member(Expr):
    base: Expr = None
    name: str = ""
    arrow: bool = False    #: True for '->'
    #: byte offset of the member, set by sema.
    offset: int = 0


@dataclass
class Cast(Expr):
    target_type: CType = None
    operand: Expr = None


@dataclass
class SizeofType(Expr):
    query_type: CType = None


@dataclass
class SizeofExpr(Expr):
    operand: Expr = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    var_type: CType = None
    init: Optional[Expr] = None
    #: array/struct initialiser lists arrive as a Python list of Expr.
    init_list: Optional[List[Expr]] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None
    #: True when this node came from a do-while (condition checked last).
    check_after: bool = False


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class SwitchCase:
    """One `case N:` (or `default:` when value is None) and the
    statements up to the next label (C fallthrough semantics)."""

    value: Optional[int]
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    scrutinee: Expr = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------

@dataclass
class Param:
    name: str
    type: CType
    line: int = 0


@dataclass
class FuncDef:
    name: str
    ret: CType
    params: List[Param]
    body: Optional[Block]  #: None for a prototype-only declaration
    line: int = 0
    varargs: bool = False


@dataclass
class GlobalVar:
    name: str
    var_type: CType
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None
    line: int = 0


@dataclass
class TranslationUnit:
    """The parser's output: every top-level declaration in source order."""

    functions: List[FuncDef] = field(default_factory=list)
    globals: List[GlobalVar] = field(default_factory=list)
    structs: List = field(default_factory=list)  #: List[StructType]
