"""Mini-C frontend: the language the reproduction's "Clang/LLVM" compiles.

The subset covers what the paper's instrumentation cares about: structs
(arbitrarily nested, including arrays of structs), arrays, pointers and
pointer arithmetic, function pointers, globals with initialisers, and the
usual statement forms.  Floating point is deliberately absent (see
DESIGN.md — float-heavy benchmark kernels use scaled integers).

Pipeline: :func:`tokenize` → :func:`parse` → :func:`analyze`, producing a
typed AST consumed by :mod:`repro.compiler`.
"""

from repro.lang.lexer import tokenize, Token
from repro.lang.parser import parse
from repro.lang.sema import analyze, Program

__all__ = ["tokenize", "Token", "parse", "analyze", "Program"]
