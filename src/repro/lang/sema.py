"""Semantic analysis for mini-C: symbol resolution and type checking.

``analyze`` turns the parser's untyped translation unit into a typed
:class:`Program`:

* every expression node gets its ``ctype`` and ``lvalue`` flags set;
* identifiers get their binding class (local / param / global / function);
* member accesses get their byte ``offset``;
* string literals are interned into synthetic globals;
* calls are checked against function signatures, including the builtin
  (libc/runtime) signatures in :data:`BUILTIN_SIGNATURES`.

The checker is deliberately permissive in the places C is (implicit
integer conversions, ``void*`` interchange, integer/pointer casts) and
strict where the compiler downstream needs guarantees (struct member
existence, call arity, lvalue-ness of assignment targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TypeError_
from repro.lang import astnodes as ast
from repro.lang.ctypes import (
    ArrayType, CHAR, CType, FunctionType, INT, IntType, LONG, PointerType,
    StructType, UINT, ULONG, USHORT, VOID, VOID_PTR, common_int_type, decay,
)

# ---------------------------------------------------------------------------
# Builtin (libc + IFP runtime) function signatures.  These are the
# *uninstrumented* functions of the paper's evaluation: the compiler knows
# their types but treats their pointer results as legacy pointers.
# ---------------------------------------------------------------------------

_CHAR_PTR = PointerType(CHAR)

BUILTIN_SIGNATURES: Dict[str, FunctionType] = {
    # allocation (rewritten by instrumentation to the runtime's allocators)
    "malloc": FunctionType(VOID_PTR, (ULONG,)),
    "calloc": FunctionType(VOID_PTR, (ULONG, ULONG)),
    "realloc": FunctionType(VOID_PTR, (VOID_PTR, ULONG)),
    "free": FunctionType(VOID, (VOID_PTR,)),
    # memory / string (legacy libc: never instrumented)
    "memcpy": FunctionType(VOID_PTR, (VOID_PTR, VOID_PTR, ULONG)),
    "memmove": FunctionType(VOID_PTR, (VOID_PTR, VOID_PTR, ULONG)),
    "memset": FunctionType(VOID_PTR, (VOID_PTR, INT, ULONG)),
    "memcmp": FunctionType(INT, (VOID_PTR, VOID_PTR, ULONG)),
    "strlen": FunctionType(ULONG, (_CHAR_PTR,)),
    "strcmp": FunctionType(INT, (_CHAR_PTR, _CHAR_PTR)),
    "strncmp": FunctionType(INT, (_CHAR_PTR, _CHAR_PTR, ULONG)),
    "strcpy": FunctionType(_CHAR_PTR, (_CHAR_PTR, _CHAR_PTR)),
    "strncpy": FunctionType(_CHAR_PTR, (_CHAR_PTR, _CHAR_PTR, ULONG)),
    "strcat": FunctionType(_CHAR_PTR, (_CHAR_PTR, _CHAR_PTR)),
    "strchr": FunctionType(_CHAR_PTR, (_CHAR_PTR, INT)),
    "atoi": FunctionType(INT, (_CHAR_PTR,)),
    # ctype.h-style helpers (legacy double-pointer table pattern — see the
    # paper's anagram discussion — is modelled in repro.runtime.libc)
    "isalpha": FunctionType(INT, (INT,)),
    "isdigit": FunctionType(INT, (INT,)),
    "isspace": FunctionType(INT, (INT,)),
    "tolower": FunctionType(INT, (INT,)),
    "toupper": FunctionType(INT, (INT,)),
    "__ctype_b_loc": FunctionType(PointerType(PointerType(USHORT)), ()),
    # process / io
    "exit": FunctionType(VOID, (INT,)),
    "abort": FunctionType(VOID, ()),
    "puts": FunctionType(INT, (_CHAR_PTR,)),
    "putchar": FunctionType(INT, (INT,)),
    "printf": FunctionType(INT, (_CHAR_PTR,), varargs=True),
    "print_int": FunctionType(VOID, (LONG,)),
    # misc
    "rand": FunctionType(INT, ()),
    "srand": FunctionType(VOID, (UINT,)),
    "clock": FunctionType(LONG, ()),
    "isqrt": FunctionType(LONG, (LONG,)),  # integer sqrt helper
    "labs": FunctionType(LONG, (LONG,)),
    "abs": FunctionType(INT, (INT,)),
}


@dataclass
class StringLiteral:
    """An interned string literal destined for the globals segment."""

    symbol: str
    data: bytes  #: includes the trailing NUL


@dataclass
class Program:
    """The typed program: what the compiler consumes."""

    functions: Dict[str, ast.FuncDef]
    globals: Dict[str, ast.GlobalVar]
    structs: List[StructType]
    strings: List[StringLiteral]
    #: functions in definition order (drives code emission order)
    function_order: List[str] = field(default_factory=list)

    def struct(self, name: str) -> StructType:
        for struct_type in self.structs:
            if struct_type.name == name:
                return struct_type
        raise KeyError(name)


def analyze(unit: ast.TranslationUnit) -> Program:
    """Type-check a translation unit; returns the typed program."""
    return _Checker(unit).run()


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.vars: Dict[str, Tuple[str, CType]] = {}

    def define(self, name: str, binding: str, ctype: CType, line: int) -> None:
        if name in self.vars:
            raise TypeError_(f"redefinition of {name!r}", line)
        self.vars[name] = (binding, ctype)

    def lookup(self, name: str) -> Optional[Tuple[str, CType]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None


class _Checker:
    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.functions: Dict[str, ast.FuncDef] = {}
        self.globals: Dict[str, ast.GlobalVar] = {}
        self.strings: List[StringLiteral] = []
        self._string_index: Dict[bytes, str] = {}
        self.current_ret: CType = VOID
        self.function_order: List[str] = []

    # -- driver ---------------------------------------------------------------

    def run(self) -> Program:
        for struct_type in self.unit.structs:
            if not struct_type.complete:
                raise TypeError_(f"struct {struct_type.name} never defined")
        for func in self.unit.functions:
            existing = self.functions.get(func.name)
            if existing is not None and existing.body is not None \
                    and func.body is not None:
                raise TypeError_(f"redefinition of function {func.name!r}",
                                 func.line)
            if existing is None or func.body is not None:
                self.functions[func.name] = func
        for var in self.unit.globals:
            if var.name in self.globals:
                raise TypeError_(f"redefinition of global {var.name!r}",
                                 var.line)
            self.globals[var.name] = var
        for var in self.unit.globals:
            self._check_global(var)
        for func in self.unit.functions:
            if func.body is not None:
                self.function_order.append(func.name)
                self._check_function(func)
        return Program(self.functions, self.globals, list(self.unit.structs),
                       self.strings, self.function_order)

    # -- declarations ------------------------------------------------------------

    def _check_global(self, var: ast.GlobalVar) -> None:
        if var.var_type.is_void or var.var_type.is_function:
            raise TypeError_(f"global {var.name!r} has invalid type", var.line)
        scope = _Scope()
        if var.init is not None:
            self._check_expr(var.init, scope)
            self._require_convertible(var.init.ctype, var.var_type, var.line)
        if var.init_list is not None:
            for item in var.init_list:
                self._check_expr(item, scope)

    def _check_function(self, func: ast.FuncDef) -> None:
        scope = _Scope()
        for param in func.params:
            param_type = decay(param.type)
            scope.define(param.name, "param", param_type, func.line)
        self.current_ret = func.ret
        self._check_block(func.body, _Scope(scope))

    # -- statements -----------------------------------------------------------------

    def _check_block(self, block: ast.Block, scope: _Scope) -> None:
        inner = _Scope(scope)
        for stmt in block.body:
            self._check_stmt(stmt, inner)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.VarDecl):
            self._check_vardecl(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_scalar(stmt.cond, scope)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._check_scalar(stmt.cond, scope)
            self._check_stmt(stmt.body, scope)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_scalar(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._check_stmt(stmt.body, inner)
        elif isinstance(stmt, ast.Switch):
            self._check_expr(stmt.scrutinee, scope)
            if not decay(stmt.scrutinee.ctype).is_integer:
                raise TypeError_("switch scrutinee must be an integer",
                                 stmt.line)
            seen_values = set()
            for case in stmt.cases:
                if case.value is not None:
                    if case.value in seen_values:
                        raise TypeError_(
                            f"duplicate case value {case.value}", stmt.line)
                    seen_values.add(case.value)
                inner = _Scope(scope)
                for inner_stmt in case.body:
                    self._check_stmt(inner_stmt, inner)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, scope)
                if self.current_ret.is_void:
                    raise TypeError_("return with value in void function",
                                     stmt.line)
                self._require_convertible(stmt.value.ctype, self.current_ret,
                                          stmt.line)
            elif not self.current_ret.is_void:
                raise TypeError_("return without value", stmt.line)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        else:  # pragma: no cover - parser produces no other nodes
            raise TypeError_(f"unknown statement {type(stmt).__name__}",
                             stmt.line)

    def _check_vardecl(self, decl: ast.VarDecl, scope: _Scope) -> None:
        if decl.var_type.is_void or decl.var_type.is_function:
            raise TypeError_(f"variable {decl.name!r} has invalid type",
                             decl.line)
        scope.define(decl.name, "local", decl.var_type, decl.line)
        if decl.init is not None:
            self._check_expr(decl.init, scope)
            self._require_convertible(decl.init.ctype, decl.var_type,
                                      decl.line)
        if decl.init_list is not None:
            if not decl.var_type.is_aggregate:
                raise TypeError_("brace initialiser on non-aggregate",
                                 decl.line)
            for item in decl.init_list:
                self._check_expr(item, scope)

    def _check_scalar(self, expr: ast.Expr, scope: _Scope) -> None:
        self._check_expr(expr, scope)
        if not decay(expr.ctype).is_scalar:
            raise TypeError_("condition must be scalar", expr.line)

    # -- expressions ------------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> CType:
        handler = getattr(self, "_expr_" + type(expr).__name__)
        ctype = handler(expr, scope)
        expr.ctype = ctype
        return ctype

    def _expr_IntLit(self, expr: ast.IntLit, scope: _Scope) -> CType:
        return INT if -(1 << 31) <= expr.value < (1 << 31) else LONG

    def _expr_StrLit(self, expr: ast.StrLit, scope: _Scope) -> CType:
        data = expr.text.encode("latin-1") + b"\x00"
        symbol = self._string_index.get(data)
        if symbol is None:
            symbol = f"__str{len(self.strings)}"
            self._string_index[data] = symbol
            self.strings.append(StringLiteral(symbol, data))
        expr.symbol = symbol
        return PointerType(CHAR)

    def _expr_Ident(self, expr: ast.Ident, scope: _Scope) -> CType:
        found = scope.lookup(expr.name)
        if found is not None:
            expr.binding, ctype = found
            expr.lvalue = not ctype.is_array  # arrays are not assignable
            if ctype.is_array:
                expr.lvalue = True  # addressable, but not assignable; lowering cares about addresses
            return ctype
        if expr.name in self.globals:
            expr.binding = "global"
            expr.lvalue = True
            return self.globals[expr.name].var_type
        if expr.name in self.functions:
            expr.binding = "function"
            func = self.functions[expr.name]
            return FunctionType(func.ret,
                                tuple(decay(p.type) for p in func.params),
                                func.varargs)
        if expr.name in BUILTIN_SIGNATURES:
            expr.binding = "function"
            return BUILTIN_SIGNATURES[expr.name]
        raise TypeError_(f"undeclared identifier {expr.name!r}", expr.line)

    def _expr_Unary(self, expr: ast.Unary, scope: _Scope) -> CType:
        operand = decay(self._check_expr(expr.operand, scope))
        if expr.op == "!":
            if not operand.is_scalar:
                raise TypeError_("operand of ! must be scalar", expr.line)
            return INT
        if not operand.is_integer:
            raise TypeError_(f"operand of {expr.op} must be integer",
                             expr.line)
        return common_int_type(operand, INT)

    def _expr_Deref(self, expr: ast.Deref, scope: _Scope) -> CType:
        pointer = decay(self._check_expr(expr.pointer, scope))
        if not pointer.is_pointer:
            raise TypeError_("cannot dereference non-pointer", expr.line)
        pointee = pointer.pointee
        if pointee.is_void:
            raise TypeError_("cannot dereference void*", expr.line)
        expr.lvalue = not pointee.is_function
        return pointee

    def _expr_AddressOf(self, expr: ast.AddressOf, scope: _Scope) -> CType:
        operand_type = self._check_expr(expr.operand, scope)
        if operand_type.is_function:
            return PointerType(operand_type)
        if not expr.operand.lvalue:
            raise TypeError_("cannot take address of rvalue", expr.line)
        return PointerType(operand_type)

    def _expr_Binary(self, expr: ast.Binary, scope: _Scope) -> CType:
        left = decay(self._check_expr(expr.left, scope))
        right = decay(self._check_expr(expr.right, scope))
        op = expr.op
        if op in ("&&", "||"):
            if not (left.is_scalar and right.is_scalar):
                raise TypeError_(f"operands of {op} must be scalar", expr.line)
            return INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if left.is_pointer or right.is_pointer:
                return INT  # pointer comparisons (incl. against 0)
            if left.is_integer and right.is_integer:
                return INT
            raise TypeError_(f"invalid operands of {op}", expr.line)
        if op == "+":
            if left.is_pointer and right.is_integer:
                return left
            if left.is_integer and right.is_pointer:
                return right
        if op == "-":
            if left.is_pointer and right.is_integer:
                return left
            if left.is_pointer and right.is_pointer:
                return LONG
        if left.is_integer and right.is_integer:
            return common_int_type(left, right)
        raise TypeError_(f"invalid operands of {op} "
                         f"({left} vs {right})", expr.line)

    def _expr_Conditional(self, expr: ast.Conditional, scope: _Scope) -> CType:
        self._check_scalar(expr.cond, scope)
        then = decay(self._check_expr(expr.then, scope))
        otherwise = decay(self._check_expr(expr.otherwise, scope))
        if then.is_pointer and otherwise.is_integer:
            return then
        if otherwise.is_pointer and then.is_integer:
            return otherwise
        if then.is_pointer and otherwise.is_pointer:
            return then
        if then.is_integer and otherwise.is_integer:
            return common_int_type(then, otherwise)
        if type(then) is type(otherwise):
            return then
        raise TypeError_("incompatible conditional arms", expr.line)

    def _expr_Assign(self, expr: ast.Assign, scope: _Scope) -> CType:
        target = self._check_expr(expr.target, scope)
        self._check_expr(expr.value, scope)
        if not expr.target.lvalue or target.is_array:
            raise TypeError_("assignment target is not an lvalue", expr.line)
        if expr.op == "=":
            self._require_convertible(expr.value.ctype, target, expr.line)
        else:
            base_op = expr.op[:-1]
            value = decay(expr.value.ctype)
            if target.is_pointer:
                if base_op not in ("+", "-") or not value.is_integer:
                    raise TypeError_(f"invalid pointer compound {expr.op}",
                                     expr.line)
            elif not (target.is_integer and value.is_integer):
                raise TypeError_(f"invalid operands of {expr.op}", expr.line)
        return target

    def _expr_IncDec(self, expr: ast.IncDec, scope: _Scope) -> CType:
        target = self._check_expr(expr.target, scope)
        if not expr.target.lvalue:
            raise TypeError_(f"{expr.op} target is not an lvalue", expr.line)
        if not (target.is_integer or target.is_pointer):
            raise TypeError_(f"{expr.op} needs integer or pointer", expr.line)
        return target

    def _expr_Call(self, expr: ast.Call, scope: _Scope) -> CType:
        func_type = self._check_expr(expr.func, scope)
        callee = decay(func_type)
        if callee.is_pointer and callee.pointee.is_function:
            signature = callee.pointee
        elif func_type.is_function:
            signature = func_type
        else:
            raise TypeError_("called object is not a function", expr.line)
        params = signature.params
        if signature.varargs:
            if len(expr.args) < len(params):
                raise TypeError_("too few arguments", expr.line)
        elif len(expr.args) != len(params):
            name = expr.func.name if isinstance(expr.func, ast.Ident) else "?"
            raise TypeError_(
                f"call to {name}: expected {len(params)} args, "
                f"got {len(expr.args)}", expr.line)
        for index, arg in enumerate(expr.args):
            self._check_expr(arg, scope)
            if index < len(params):
                self._require_convertible(arg.ctype, params[index], expr.line)
        return signature.ret

    def _expr_Index(self, expr: ast.Index, scope: _Scope) -> CType:
        base = decay(self._check_expr(expr.base, scope))
        index = decay(self._check_expr(expr.index, scope))
        if not base.is_pointer:
            raise TypeError_("subscripted value is not array or pointer",
                             expr.line)
        if not index.is_integer:
            raise TypeError_("array subscript is not an integer", expr.line)
        expr.lvalue = True
        return base.pointee

    def _expr_Member(self, expr: ast.Member, scope: _Scope) -> CType:
        base = self._check_expr(expr.base, scope)
        if expr.arrow:
            base = decay(base)
            if not base.is_pointer or not base.pointee.is_struct:
                raise TypeError_("-> on non-struct-pointer", expr.line)
            struct_type = base.pointee
        else:
            if not base.is_struct:
                raise TypeError_(". on non-struct", expr.line)
            struct_type = base
        field_info = struct_type.field(expr.name)
        if field_info is None:
            raise TypeError_(
                f"struct {struct_type.name} has no member {expr.name!r}",
                expr.line)
        expr.offset = field_info.offset
        expr.lvalue = True
        return field_info.type

    def _expr_Cast(self, expr: ast.Cast, scope: _Scope) -> CType:
        operand = decay(self._check_expr(expr.operand, scope))
        target = expr.target_type
        if target.is_void:
            return VOID
        if not (operand.is_scalar and target.is_scalar):
            raise TypeError_(f"invalid cast {operand} -> {target}", expr.line)
        return target

    def _expr_SizeofType(self, expr: ast.SizeofType, scope: _Scope) -> CType:
        return ULONG

    def _expr_SizeofExpr(self, expr: ast.SizeofExpr, scope: _Scope) -> CType:
        self._check_expr(expr.operand, scope)
        return ULONG

    # -- conversions ------------------------------------------------------------------

    def _require_convertible(self, source: CType, target: CType,
                             line: int) -> None:
        source = decay(source)
        target_decayed = decay(target)
        if source.is_integer and target_decayed.is_integer:
            return
        if source.is_pointer and target_decayed.is_pointer:
            return  # C-permissive; void* interchange and struct punning
        if source.is_integer and target_decayed.is_pointer:
            return  # NULL and integer-to-pointer idioms
        if source.is_pointer and target_decayed.is_integer \
                and target_decayed.size == 8:
            return
        if source.is_struct and target_decayed.is_struct \
                and source is target_decayed:
            return
        raise TypeError_(f"cannot convert {source} to {target}", line)
