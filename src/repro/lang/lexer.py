"""Tokenizer for mini-C."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import LexError

KEYWORDS = frozenset({
    "void", "char", "short", "int", "long", "unsigned", "signed", "const",
    "struct", "union", "typedef", "if", "else", "while", "for", "do",
    "return", "break", "continue", "sizeof", "static", "extern", "NULL",
    "switch", "case", "default",
})

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


@dataclass(frozen=True)
class Token:
    kind: str   #: 'ident' | 'keyword' | 'int' | 'string' | 'op' | 'eof'
    text: str
    value: int = 0      #: numeric value for 'int' tokens
    line: int = 0
    col: int = 0

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r} @{self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize mini-C source into a token list ending with an 'eof' token."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    col = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal pos, line, col
        for _ in range(count):
            if source[pos] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1

    while pos < length:
        ch = source[pos]
        # Whitespace.
        if ch in " \t\r\n":
            advance(1)
            continue
        # Comments.
        if source.startswith("//", pos):
            while pos < length and source[pos] != "\n":
                advance(1)
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, col)
            advance(end + 2 - pos)
            continue
        start_line, start_col = line, col
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[pos:end]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, 0, start_line, start_col))
            advance(end - pos)
            continue
        # Numbers.
        if ch.isdigit():
            end = pos
            if source.startswith(("0x", "0X"), pos):
                end = pos + 2
                while end < length and source[end] in "0123456789abcdefABCDEF":
                    end += 1
                value = int(source[pos:end], 16)
            else:
                while end < length and source[end].isdigit():
                    end += 1
                value = int(source[pos:end])
            # Integer suffixes (L/U/UL) are accepted and ignored.
            while end < length and source[end] in "uUlL":
                end += 1
            tokens.append(Token("int", source[pos:end], value,
                                start_line, start_col))
            advance(end - pos)
            continue
        # Character literals become int tokens.
        if ch == "'":
            value, consumed = _read_char(source, pos, line, col)
            tokens.append(Token("int", source[pos:pos + consumed], value,
                                start_line, start_col))
            advance(consumed)
            continue
        # String literals.
        if ch == '"':
            text, consumed = _read_string(source, pos, line, col)
            tokens.append(Token("string", text, 0, start_line, start_col))
            advance(consumed)
            continue
        # Operators / punctuation.
        for op in _OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, 0, start_line, start_col))
                advance(len(op))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", 0, line, col))
    return tokens


def _read_char(source: str, pos: int, line: int, col: int) -> tuple:
    """Parse a character literal at ``pos``; return (value, chars consumed)."""
    cursor = pos + 1
    if cursor >= len(source):
        raise LexError("unterminated character literal", line, col)
    if source[cursor] == "\\":
        escape = source[cursor + 1] if cursor + 1 < len(source) else ""
        if escape not in _ESCAPES:
            raise LexError(f"unknown escape \\{escape}", line, col)
        value = _ESCAPES[escape]
        cursor += 2
    else:
        value = ord(source[cursor])
        cursor += 1
    if cursor >= len(source) or source[cursor] != "'":
        raise LexError("unterminated character literal", line, col)
    return value, cursor + 1 - pos


def _read_string(source: str, pos: int, line: int, col: int) -> tuple:
    """Parse a string literal; return (decoded text, chars consumed)."""
    cursor = pos + 1
    out: List[str] = []
    while cursor < len(source):
        ch = source[cursor]
        if ch == '"':
            return "".join(out), cursor + 1 - pos
        if ch == "\n":
            break
        if ch == "\\":
            escape = source[cursor + 1] if cursor + 1 < len(source) else ""
            if escape not in _ESCAPES:
                raise LexError(f"unknown escape \\{escape}", line, col)
            out.append(chr(_ESCAPES[escape]))
            cursor += 2
            continue
        out.append(ch)
        cursor += 1
    raise LexError("unterminated string literal", line, col)
