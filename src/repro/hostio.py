"""Host filesystem IO with one crash-safe write discipline — and one
seam for injecting host faults into it.

Everything the harness persists as JSON (checkpoint manifests, shard
results, job records) goes through :func:`atomic_write_json`: write to
``<path>.tmp``, then ``os.replace`` onto the destination.  A crash at
any instant leaves either the previous document or the new one — never
a half-written file — plus, at worst, a stale ``.tmp`` that
:func:`sweep_stale_tmp` removes the next time the directory is opened.

The module carries the repo's single **host-fault injection seam**: a
chaos run (:mod:`repro.resil.chaos`) installs an injector object here
and every atomic write consults it —

* ``before_write(op, path)`` may raise an injected IO error (ENOSPC,
  EIO) exactly where a real ``open``/``write`` would;
* ``torn_write(op, path)`` simulates a crash *between* the tmp write
  and the rename: the tmp file is truncated mid-document, the rename
  never happens, and a typed crash propagates;
* ``after_write(op, path)`` perturbs the world after a successful
  write: dropping stale ``.tmp`` debris or bit-flipping the document
  that was just persisted (the corruption a CRC check must catch).

The seam is deliberately dumb — it knows nothing about schedules or
fault classes; the injector decides.  Production runs never install
one, so the hot path is a single global read per write.

``op`` tags name the call site (``"manifest"``, ``"shard_result"``,
``"job_record"``, …) so schedules can aim at one persistence layer.
"""

from __future__ import annotations

import json
import os
import zlib
from contextlib import contextmanager
from typing import Any, Dict, Optional

TMP_SUFFIX = ".tmp"

#: the installed fault injector (None in production runs)
_INJECTOR: Optional[Any] = None


def set_injector(injector: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with None) the host-fault injector; returns
    the previous one so callers can restore it."""
    global _INJECTOR
    previous = _INJECTOR
    _INJECTOR = injector
    return previous


def current_injector() -> Optional[Any]:
    return _INJECTOR


@contextmanager
def inject_faults(injector: Optional[Any]):
    """Arm ``injector`` for the duration of the block (restores the
    previous injector on exit, even when the block raises — a torn
    write *will* raise)."""
    previous = set_injector(injector)
    try:
        yield injector
    finally:
        set_injector(previous)


def atomic_write_json(path: str, payload: Dict[str, Any], *,
                      op: str = "json") -> None:
    """Write ``payload`` to ``path`` crash-atomically (tmp +
    ``os.replace``), threading the chaos seam.

    Injected ENOSPC/EIO raise *before* anything is written (the
    failure a full disk produces on ``open``); a torn write leaves a
    truncated ``<path>.tmp``, keeps the destination untouched, and
    raises a typed crash — the exact debris a kill between the two
    steps leaves behind.
    """
    injector = _INJECTOR
    if injector is not None:
        injector.before_write(op, path)    # may raise InjectedIOFault
    tmp = path + TMP_SUFFIX
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if injector is not None and injector.torn_write(op, path):
        from repro.errors import InjectedCrash
        with open(tmp, "w") as handle:
            handle.write(rendered[:max(1, len(rendered) // 2)])
        raise InjectedCrash(
            f"chaos: crash between tmp write and rename of {path}",
            fault="torn_write", op=op, path=path)
    with open(tmp, "w") as handle:
        handle.write(rendered)
    os.replace(tmp, path)
    if injector is not None:
        injector.after_write(op, path)


def sweep_stale_tmp(directory: str) -> int:
    """Remove ``*.tmp`` crash debris from ``directory``; returns the
    count removed.

    Safe only because every writer follows the single-writer,
    open-then-run discipline: a ``.tmp`` present when a directory is
    *opened* can only be the corpse of an interrupted atomic write,
    never a live one.  Missing directories are a no-op (sweeps run
    before ``makedirs``).
    """
    removed = 0
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    for name in names:
        if not name.endswith(TMP_SUFFIX):
            continue
        try:
            os.unlink(os.path.join(directory, name))
            removed += 1
        except OSError:
            continue        # raced or unreadable: never fatal
    return removed


def crc32_of_json(payload: Any) -> int:
    """CRC32 over the canonical (sorted, compact) JSON rendering of
    ``payload`` — the checksum shard-result files carry so bit-flipped
    payloads demote to pending instead of merging silently."""
    rendered = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))
    return zlib.crc32(rendered.encode("utf-8")) & 0xFFFFFFFF
