"""The In-Fat Pointer runtime library (paper Section 4.2).

Provides, as VM builtins:

* a glibc-model **free-list allocator** (the baseline `malloc`);
* the **wrapped allocator** — libc malloc plus transparent over-allocation
  for appended local-offset metadata, global-table fallback for oversize
  objects;
* the **subheap allocator** — a pool allocator over a buddy allocator
  that groups same-size/same-type objects into power-of-two blocks with
  shared metadata (the subheap scheme);
* the **global metadata table** manager;
* per-global ``getptr`` registration (lazy global-object metadata);
* a modelled **libc** subset (mem*/str*/printf/ctype/rand/...), which is
  *uninstrumented* code: its pointer results are legacy pointers and its
  internal accesses are invisible to In-Fat Pointer — exactly the paper's
  compatibility story.
"""

from repro.runtime.freelist import FreeListAllocator
from repro.runtime.buddy import BuddyAllocator
from repro.runtime.global_table import GlobalTableManager
from repro.runtime.subheap_alloc import SubheapAllocator
from repro.runtime.wrapped_alloc import WrappedAllocator

__all__ = [
    "FreeListAllocator", "BuddyAllocator", "GlobalTableManager",
    "SubheapAllocator", "WrappedAllocator",
]
