"""Runtime manager for the global metadata table (global table scheme).

The table lives in a reserved region (never reachable through application
allocators); its base address is installed in the IFP unit's control
register at startup.  The runtime hands out rows for (a) escaping globals
too large for the local-offset scheme, (b) oversize stack objects, and
(c) oversize heap allocations from either allocator.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ResourceExhausted
from repro.ifp.poison import Poison
from repro.ifp.schemes.global_table import GlobalTableScheme, ROW_BYTES
from repro.ifp.tag import address_of, unpack_tag


class GlobalTableManager:
    def __init__(self, machine):
        self.machine = machine
        config = machine.config.ifp
        self.scheme = GlobalTableScheme(config)
        self.rows = config.global_table_rows
        self.table_base = machine.layout.metadata_table_base
        machine.memory.map_range(self.table_base, self.rows * ROW_BYTES)
        machine.ifp.control.global_table_base = self.table_base
        self._free_rows: List[int] = list(range(self.rows - 1, -1, -1))
        self.live_rows = 0
        self.peak_live_rows = 0
        #: registrations refused because the table was full (the callers
        #: decide — per DegradationPolicy — whether that traps or degrades)
        self.exhaustion_events = 0

    @property
    def exhausted(self) -> bool:
        return not self._free_rows

    @property
    def free_rows(self) -> int:
        return len(self._free_rows)

    def try_register(self, address: int, size: int,
                     layout_ptr: int) -> Optional[Tuple[int, int, int]]:
        """Claim a row if one is free; returns None when the table is
        full (the degradation-policy path — callers fall back to an
        untagged legacy pointer instead of trapping)."""
        if not self._free_rows:
            self.exhaustion_events += 1
            return None
        return self.register(address, size, layout_ptr)

    def register(self, address: int, size: int,
                 layout_ptr: int) -> Tuple[int, int, int]:
        """Claim a row; returns (tagged pointer, cycles, instrs).

        Raises :class:`ResourceExhausted` when the table is full — the
        strict-policy path.  Policy-aware callers use
        :meth:`try_register` instead.
        """
        if not self._free_rows:
            self.exhaustion_events += 1
            raise ResourceExhausted(
                f"global metadata table full "
                f"({self.rows} rows, {self.live_rows} live)")
        index = self._free_rows.pop()
        memory = self.machine.memory
        self.scheme.write_row(memory, self.table_base, index, address,
                              size, layout_ptr)
        row = self.scheme.row_address(self.table_base, index)
        cycles = self.machine.hierarchy.access_cycles(row, ROW_BYTES, True)
        self.live_rows += 1
        self.peak_live_rows = max(self.peak_live_rows, self.live_rows)
        tagged = self.scheme.make_pointer(address, index, Poison.VALID)
        return tagged, cycles + 12, 12

    def deregister(self, tagged_pointer: int) -> Tuple[int, int]:
        """Release the row named by a tagged pointer; (cycles, instrs)."""
        tag = unpack_tag(tagged_pointer)
        index = tag.global_table_index(self.machine.config.ifp)
        memory = self.machine.memory
        self.scheme.clear_row(memory, self.table_base, index)
        row = self.scheme.row_address(self.table_base, index)
        cycles = self.machine.hierarchy.access_cycles(row, ROW_BYTES, True)
        self._free_rows.append(index)
        self.live_rows -= 1
        return cycles + 8, 8

    def row_info(self, tagged_pointer: int) -> Tuple[int, int, int]:
        """(base, size, layout_ptr) for a tagged pointer's row."""
        tag = unpack_tag(tagged_pointer)
        index = tag.global_table_index(self.machine.config.ifp)
        row = self.scheme.row_address(self.table_base, index)
        memory = self.machine.memory
        return (memory.load_int(row, 6), memory.load_int(row + 6, 4),
                memory.load_int(row + 10, 6))
