"""A glibc-model first-fit free-list allocator.

This is the baseline `malloc`: 16-byte chunk headers, first-fit search of
an address-ordered free list with coalescing, sbrk-style growth.  The
in-memory header (size + in-use flag) is really written to simulated
memory so allocator metadata occupies heap like glibc's does — the
per-object overhead the paper's subheap allocator avoids.

Cost model: a fixed path cost plus a per-step search cost; header
reads/writes go through the cache hierarchy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import InvalidFree

#: Chunk header size (stored immediately before the payload).
HEADER_BYTES = 16
_ALIGN = 16

#: modelled instruction costs
_MALLOC_BASE = 22
_MALLOC_STEP = 2
_FREE_BASE = 16
_GROW_COST = 30


class FreeListAllocator:
    """First-fit allocator over ``[base, limit)`` of simulated memory."""

    def __init__(self, memory, hierarchy, base: int, limit: int):
        self.memory = memory
        self.hierarchy = hierarchy
        self.base = base
        self.limit = limit
        self.brk = base
        #: address-ordered free chunks: (address, size) of whole chunks
        self.free_chunks: List[Tuple[int, int]] = []
        self.live_bytes = 0
        self.peak_live_bytes = 0
        self.allocations = 0
        #: temporal quarantine (repro.temporal): freed chunks are marked
        #: free in their headers but never reinserted for reuse, so no
        #: later allocation can alias a dangling pointer's address
        self.quarantine = False
        self.quarantined_bytes = 0

    # -- public API ----------------------------------------------------------

    def malloc(self, size: int) -> Tuple[int, int, int]:
        """Allocate ``size`` bytes; returns (payload address, cycles, instrs).

        Returns address 0 on out-of-memory (like malloc's NULL).
        """
        if size <= 0:
            size = 1
        chunk_size = _align(size + HEADER_BYTES, _ALIGN)
        instrs = _MALLOC_BASE
        cycles = 0
        chunk = 0
        for index, (address, available) in enumerate(self.free_chunks):
            instrs += _MALLOC_STEP
            if available >= chunk_size:
                remainder = available - chunk_size
                if remainder >= _ALIGN + HEADER_BYTES:
                    self.free_chunks[index] = (address + chunk_size,
                                               remainder)
                else:
                    chunk_size = available
                    del self.free_chunks[index]
                chunk = address
                break
        if chunk == 0:
            chunk = self._grow(chunk_size)
            instrs += _GROW_COST
            if chunk == 0:
                return 0, cycles + instrs, instrs
        cycles += self._write_header(chunk, chunk_size, in_use=True)
        self.live_bytes += chunk_size
        self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
        self.allocations += 1
        return chunk + HEADER_BYTES, cycles + instrs, instrs

    def free(self, payload: int) -> Tuple[int, int]:
        """Free a payload address; returns (cycles, instrs)."""
        if payload == 0:
            return 2, 2
        chunk = payload - HEADER_BYTES
        instrs = _FREE_BASE
        # Range-check before touching the header: a wild pointer must not
        # fault inside the simulator's own memory model.
        if chunk < self.base or chunk >= self.brk:
            raise InvalidFree(
                f"invalid free of 0x{payload:x}: outside freelist heap "
                f"[0x{self.base + HEADER_BYTES:x}, 0x{self.brk:x})",
                address=payload, allocator="freelist",
                kind="unknown_pointer")
        cycles = self.hierarchy.access_cycles(chunk, 8, False)
        header = self.memory.load_u64(chunk)
        chunk_size = header & ~1
        if chunk_size == 0:
            raise InvalidFree(
                f"invalid free of 0x{payload:x}: no chunk header at "
                f"0x{chunk:x} (not an allocation start)",
                address=payload, allocator="freelist",
                kind="unknown_pointer")
        if not header & 1:
            raise InvalidFree(
                f"double free of 0x{payload:x}: freelist chunk 0x{chunk:x} "
                f"({chunk_size} bytes) is already free",
                address=payload, allocator="freelist", kind="double_free")
        cycles += self._write_header(chunk, chunk_size, in_use=False)
        self.live_bytes -= chunk_size
        if self.quarantine:
            self.quarantined_bytes += chunk_size
        else:
            self._insert_free(chunk, chunk_size)
        return cycles + instrs, instrs

    def usable_size(self, payload: int) -> int:
        chunk = payload - HEADER_BYTES
        return (self.memory.load_u64(chunk) & ~1) - HEADER_BYTES

    # -- internals ---------------------------------------------------------------

    def _grow(self, chunk_size: int) -> int:
        new_brk = self.brk + chunk_size
        if new_brk > self.limit:
            return 0
        chunk = self.brk
        self.memory.map_range(self.brk, chunk_size)
        self.brk = new_brk
        return chunk

    def _write_header(self, chunk: int, chunk_size: int,
                      in_use: bool) -> int:
        self.memory.store_u64(chunk, chunk_size | (1 if in_use else 0))
        self.memory.store_u64(chunk + 8, 0)
        return self.hierarchy.access_cycles(chunk, HEADER_BYTES, True)

    def _insert_free(self, chunk: int, chunk_size: int) -> None:
        """Insert address-ordered and coalesce with neighbours."""
        chunks = self.free_chunks
        lo, hi = 0, len(chunks)
        while lo < hi:
            mid = (lo + hi) // 2
            if chunks[mid][0] < chunk:
                lo = mid + 1
            else:
                hi = mid
        chunks.insert(lo, (chunk, chunk_size))
        # Coalesce with successor, then predecessor.
        if lo + 1 < len(chunks):
            address, size = chunks[lo]
            next_address, next_size = chunks[lo + 1]
            if address + size == next_address:
                chunks[lo] = (address, size + next_size)
                del chunks[lo + 1]
        if lo > 0:
            prev_address, prev_size = chunks[lo - 1]
            address, size = chunks[lo]
            if prev_address + prev_size == address:
                chunks[lo - 1] = (prev_address, prev_size + size)
                del chunks[lo]


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)
