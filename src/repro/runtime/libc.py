"""Modelled libc subset — the *uninstrumented legacy code* of the paper.

These builtins execute natively (for simulation speed) but:

* really read/write simulated memory, so guest-visible state is exact;
* charge modelled instruction counts and cache traffic, so the overhead
  figures include libc work on both baseline and instrumented runs;
* return **legacy pointers** (no tag, no bounds) — instrumented callers
  promote them and the promote bypasses, reproducing the paper's ">20 %
  of promotes see NULL or legacy pointers" observation;
* ignore pointer *tags* on their arguments but trap on *poison bits*
  (the paper's modified kernel "ignores pointer tags (but not poison
  bits) when checking pointers from user space"); spatial errors
  *inside* legacy code remain invisible — the paper's stated
  non-guarantee.

``strlen`` models glibc's word-sized reads (the over-read that made the
paper exclude PtrDist's *bc*): it may touch bytes past the terminator
within the final word.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import GuestExit, MemoryFault, PoisonTrap, SimTrap
from repro.ifp.tag import address_of

Result = Tuple[int, Optional[object], int, int]


def _guest_pointer(pointer: int) -> int:
    """Strip the tag of a pointer crossing into legacy code, honouring
    the poison bits: the paper's modified kernel "ignores pointer tags
    (but not poison bits) when checking pointers from user space"."""
    if pointer >> 62:
        raise PoisonTrap("poisoned pointer passed to legacy code", pointer)
    return address_of(pointer)


def _touch(machine, address: int, size: int, write: bool) -> int:
    if size <= 0:
        return 0
    return machine.hierarchy.access_cycles(address, size, write)


def _cstring(machine, pointer: int, limit: int = 1 << 20) -> bytes:
    return machine.memory.read_cstring(_guest_pointer(pointer), limit)


# -- memory ------------------------------------------------------------------

def do_memcpy(machine, args, bounds) -> Result:
    dst, src, count = _guest_pointer(args[0]), _guest_pointer(args[1]), args[2]
    machine.memory.copy(dst, src, count)
    instrs = 12 + count // 8
    cycles = instrs + _touch(machine, src, count, False) \
        + _touch(machine, dst, count, True)
    return args[0], bounds[0], cycles, instrs


def do_memmove(machine, args, bounds) -> Result:
    return do_memcpy(machine, args, bounds)


def do_memset(machine, args, bounds) -> Result:
    dst, value, count = _guest_pointer(args[0]), args[1] & 0xFF, args[2]
    machine.memory.fill(dst, value, count)
    instrs = 10 + count // 8
    cycles = instrs + _touch(machine, dst, count, True)
    return args[0], bounds[0], cycles, instrs


def do_memcmp(machine, args, bounds) -> Result:
    a, b, count = _guest_pointer(args[0]), _guest_pointer(args[1]), args[2]
    left = machine.memory.read_bytes(a, count)
    right = machine.memory.read_bytes(b, count)
    result = 0
    steps = count
    for index in range(count):
        if left[index] != right[index]:
            result = left[index] - right[index]
            steps = index + 1
            break
    instrs = 8 + steps
    cycles = instrs + _touch(machine, a, steps, False) \
        + _touch(machine, b, steps, False)
    return result & ((1 << 64) - 1), None, cycles, instrs


# -- strings ------------------------------------------------------------------

def do_strlen(machine, args, bounds) -> Result:
    pointer = _guest_pointer(args[0])
    data = _cstring(machine, pointer)
    length = len(data)
    if machine.config.strlen_word_reads:
        # glibc reads whole aligned words; model the cache traffic of the
        # words covering [pointer, pointer + length] inclusive of the
        # terminator (and thus possibly bytes beyond it).
        start = pointer & ~7
        end = (pointer + length + 8) & ~7
        words = (end - start) // 8
        instrs = 12 + words * 2
        cycles = instrs + _touch(machine, start, end - start, False)
    else:
        instrs = 8 + length
        cycles = instrs + _touch(machine, pointer, length + 1, False)
    return length, None, cycles, instrs


def do_strcmp(machine, args, bounds) -> Result:
    a = _cstring(machine, args[0])
    b = _cstring(machine, args[1])
    if a == b:
        result = 0
    else:
        result = -1 if a < b else 1
    steps = min(len(a), len(b)) + 1
    instrs = 8 + steps
    cycles = instrs + _touch(machine, address_of(args[0]), steps, False) \
        + _touch(machine, address_of(args[1]), steps, False)
    return result & ((1 << 64) - 1), None, cycles, instrs


def do_strncmp(machine, args, bounds) -> Result:
    limit = args[2]
    a = _cstring(machine, args[0])[:limit]
    b = _cstring(machine, args[1])[:limit]
    result = 0 if a == b else (-1 if a < b else 1)
    steps = min(len(a), len(b), limit) + 1
    instrs = 8 + steps
    return result & ((1 << 64) - 1), None, instrs + 2, instrs


def do_strcpy(machine, args, bounds) -> Result:
    dst = _guest_pointer(args[0])
    data = _cstring(machine, args[1]) + b"\x00"
    machine.memory.write_bytes(dst, data)
    instrs = 8 + len(data)
    cycles = instrs + _touch(machine, dst, len(data), True) \
        + _touch(machine, address_of(args[1]), len(data), False)
    return args[0], bounds[0], cycles, instrs


def do_strncpy(machine, args, bounds) -> Result:
    dst = _guest_pointer(args[0])
    limit = args[2]
    data = _cstring(machine, args[1])[:limit]
    data = data + b"\x00" * (limit - len(data))
    machine.memory.write_bytes(dst, data)
    instrs = 8 + limit
    return args[0], bounds[0], instrs + _touch(machine, dst, limit, True), \
        instrs


def do_strcat(machine, args, bounds) -> Result:
    dst = _guest_pointer(args[0])
    existing = _cstring(machine, args[0])
    extra = _cstring(machine, args[1]) + b"\x00"
    machine.memory.write_bytes(dst + len(existing), extra)
    instrs = 10 + len(existing) + len(extra)
    return args[0], bounds[0], instrs + 4, instrs


def do_strchr(machine, args, bounds) -> Result:
    data = _cstring(machine, args[0])
    needle = args[1] & 0xFF
    index = data.find(bytes([needle]))
    if needle == 0:
        index = len(data)
    instrs = 8 + (index if index >= 0 else len(data))
    if index < 0:
        return 0, None, instrs + 2, instrs
    return (address_of(args[0]) + index), None, instrs + 2, instrs


def do_atoi(machine, args, bounds) -> Result:
    text = _cstring(machine, args[0]).decode("latin-1").strip()
    value = 0
    sign = 1
    pos = 0
    if pos < len(text) and text[pos] in "+-":
        sign = -1 if text[pos] == "-" else 1
        pos += 1
    while pos < len(text) and text[pos].isdigit():
        value = value * 10 + int(text[pos])
        pos += 1
    instrs = 6 + pos
    return (sign * value) & ((1 << 64) - 1), None, instrs + 2, instrs


# -- ctype -------------------------------------------------------------------

def _ctype_result(value: int) -> Result:
    return value, None, 4, 4


def do_isalpha(machine, args, bounds) -> Result:
    return _ctype_result(int(chr(args[0] & 0xFF).isalpha()))


def do_isdigit(machine, args, bounds) -> Result:
    return _ctype_result(int(chr(args[0] & 0xFF).isdigit()))


def do_isspace(machine, args, bounds) -> Result:
    return _ctype_result(int(chr(args[0] & 0xFF).isspace()))


def do_tolower(machine, args, bounds) -> Result:
    return _ctype_result(ord(chr(args[0] & 0xFF).lower()[0]))


def do_toupper(machine, args, bounds) -> Result:
    return _ctype_result(ord(chr(args[0] & 0xFF).upper()[0]))


def do_ctype_b_loc(machine, args, bounds) -> Result:
    """Return the glibc-style double pointer to the character traits
    table — the legacy-pointer pattern from the paper's anagram analysis."""
    slot = machine.ctype_table_slot
    return slot, None, 5 + _touch(machine, slot, 8, False), 5


# -- misc ---------------------------------------------------------------------

def do_rand(machine, args, bounds) -> Result:
    return machine.rand(), None, 8, 8


def do_srand(machine, args, bounds) -> Result:
    machine.srand(args[0])
    return 0, None, 4, 4


def do_abs(machine, args, bounds) -> Result:
    value = args[0]
    if value & (1 << 63):
        value = (1 << 64) - value
    return value, None, 3, 3


def do_isqrt(machine, args, bounds) -> Result:
    """Integer square root (the fixed-point substitute for libm sqrt)."""
    value = args[0]
    if value & (1 << 63):
        value = 0
    root = int(value ** 0.5)
    while root * root > value:
        root -= 1
    while (root + 1) * (root + 1) <= value:
        root += 1
    return root, None, 20, 20


def do_clock(machine, args, bounds) -> Result:
    return machine.stats.cycles & ((1 << 64) - 1), None, 4, 4


def do_exit(machine, args, bounds) -> Result:
    raise GuestExit(args[0] & 0xFF if args else 0)


def do_abort(machine, args, bounds) -> Result:
    raise SimTrap("abort() called")


# -- output ----------------------------------------------------------------------

def do_puts(machine, args, bounds) -> Result:
    text = _cstring(machine, args[0]).decode("latin-1")
    machine.write_output(text + "\n")
    instrs = 10 + len(text)
    return len(text) + 1, None, instrs + 2, instrs


def do_putchar(machine, args, bounds) -> Result:
    machine.write_output(chr(args[0] & 0xFF))
    return args[0] & 0xFF, None, 5, 5


def do_print_int(machine, args, bounds) -> Result:
    value = args[0]
    if value & (1 << 63):
        value -= 1 << 64
    machine.write_output(str(value))
    return 0, None, 12, 12


def do_printf(machine, args, bounds) -> Result:
    fmt = _cstring(machine, args[0]).decode("latin-1")
    out: List[str] = []
    arg_index = 1
    pos = 0
    while pos < len(fmt):
        ch = fmt[pos]
        if ch != "%":
            out.append(ch)
            pos += 1
            continue
        pos += 1
        # Skip width/flags/length modifiers.
        while pos < len(fmt) and fmt[pos] in "-+ 0123456789.l":
            pos += 1
        if pos >= len(fmt):
            break
        spec = fmt[pos]
        pos += 1
        if spec == "%":
            out.append("%")
            continue
        value = args[arg_index] if arg_index < len(args) else 0
        arg_index += 1
        if spec in "di":
            signed = value - (1 << 64) if value & (1 << 63) else value
            out.append(str(signed))
        elif spec == "u":
            out.append(str(value))
        elif spec == "x":
            out.append(format(value, "x"))
        elif spec == "c":
            out.append(chr(value & 0xFF))
        elif spec == "s":
            out.append(_cstring(machine, value).decode("latin-1"))
        elif spec == "p":
            out.append(f"0x{value & ((1 << 48) - 1):x}")
        else:
            out.append("%" + spec)
    text = "".join(out)
    machine.write_output(text)
    instrs = 20 + 2 * len(text)
    return len(text), None, instrs + 4, instrs


#: export table: builtin name -> implementation
LIBC_BUILTINS = {
    "memcpy": do_memcpy, "memmove": do_memmove, "memset": do_memset,
    "memcmp": do_memcmp, "strlen": do_strlen, "strcmp": do_strcmp,
    "strncmp": do_strncmp, "strcpy": do_strcpy, "strncpy": do_strncpy,
    "strcat": do_strcat, "strchr": do_strchr, "atoi": do_atoi,
    "isalpha": do_isalpha, "isdigit": do_isdigit, "isspace": do_isspace,
    "tolower": do_tolower, "toupper": do_toupper,
    "__ctype_b_loc": do_ctype_b_loc,
    "rand": do_rand, "srand": do_srand, "abs": do_abs, "labs": do_abs,
    "isqrt": do_isqrt, "clock": do_clock, "exit": do_exit,
    "abort": do_abort, "puts": do_puts, "putchar": do_putchar,
    "printf": do_printf, "print_int": do_print_int,
}
