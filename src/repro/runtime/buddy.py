"""A binary buddy allocator for power-of-two, naturally-aligned blocks.

The subheap allocator sits on top of this (the paper: "a pool allocator
on top of a buddy allocator").  Blocks of order *k* are ``2**k`` bytes and
aligned to their size — exactly the property the subheap scheme's
``addr & ~(block_size - 1)`` lookup requires.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class BuddyAllocator:
    """Buddy allocator over ``[base, limit)``; base must be aligned to the
    maximum order."""

    def __init__(self, memory, base: int, limit: int,
                 min_order: int = 12, max_order: int = 22):
        if base & ((1 << max_order) - 1):
            raise ValueError("base must be aligned to the maximum order")
        self.memory = memory
        self.base = base
        self.limit = limit
        self.min_order = min_order
        self.max_order = max_order
        self.cursor = base
        self.free_blocks: Dict[int, List[int]] = \
            {order: [] for order in range(min_order, max_order + 1)}
        self.allocated_bytes = 0
        #: temporal quarantine (repro.temporal): freed blocks are neither
        #: coalesced nor reinserted, so block addresses are never reused
        self.quarantine = False
        self.quarantined_bytes = 0

    def alloc(self, order: int) -> Tuple[int, int]:
        """Allocate a block of ``2**order`` bytes; returns (address, instrs).

        Address 0 means out of memory.
        """
        order = max(order, self.min_order)
        if order > self.max_order:
            return 0, 4
        instrs = 8
        # Find the smallest available order >= requested.
        for candidate in range(order, self.max_order + 1):
            if self.free_blocks[candidate]:
                block = self.free_blocks[candidate].pop()
                instrs += 2 * (candidate - order)
                # Split down, pushing the upper halves.
                for split in range(candidate - 1, order - 1, -1):
                    self.free_blocks[split].append(block + (1 << split))
                self.allocated_bytes += 1 << order
                return block, instrs
        # Carve a naturally-aligned fresh block from the region cursor.
        # Alignment holes are never mapped, so they cost address space
        # only — resident memory grows by exactly the block size.
        size = 1 << order
        block = (self.cursor + size - 1) & ~(size - 1)
        if block + size > self.limit:
            return 0, instrs
        self.cursor = block + size
        self.memory.map_range(block, size)
        instrs += 12
        self.allocated_bytes += size
        return block, instrs

    def free(self, address: int, order: int) -> int:
        """Free a block; returns modelled instruction count."""
        order = max(order, self.min_order)
        instrs = 6
        block = address
        self.allocated_bytes -= 1 << order
        if self.quarantine:
            self.quarantined_bytes += 1 << order
            return instrs
        while order < self.max_order:
            buddy = block ^ (1 << order)
            try:
                self.free_blocks[order].remove(buddy)
            except ValueError:
                break
            block = min(block, buddy)
            order += 1
            instrs += 3
        self.free_blocks[order].append(block)
        return instrs
