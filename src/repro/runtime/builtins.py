"""Builtin registry: wires the runtime library onto a machine.

``install(machine)`` creates the allocators and the global-table manager,
initialises runtime state (the paper's "initialize the In-Fat Pointer
environment at application startup"), and returns the builtin dispatch
table the interpreter consults for non-guest calls.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SimTrap
from repro.ifp.bounds import Bounds
from repro.ifp.poison import Poison
from repro.ifp.schemes.local_offset import (
    LocalOffsetScheme, METADATA_BYTES,
)
from repro.ifp.tag import (
    Scheme, address_of, temporal_key_of, unpack_tag, with_temporal_key,
)
from repro.resil.policy import STRICT
from repro.temporal import check_free
from repro.runtime.buddy import BuddyAllocator
from repro.runtime.freelist import FreeListAllocator
from repro.runtime.global_table import GlobalTableManager
from repro.runtime.libc import LIBC_BUILTINS
from repro.runtime.subheap_alloc import SubheapAllocator
from repro.runtime.wrapped_alloc import WrappedAllocator

#: split of the heap region between the free-list and buddy allocators
_FREELIST_SHARE = 0x1000_0000


def install(machine) -> Dict[str, callable]:
    layout = machine.layout
    freelist = FreeListAllocator(
        machine.memory, machine.hierarchy,
        layout.heap_base, layout.heap_base + _FREELIST_SHARE)
    buddy = BuddyAllocator(
        machine.memory, layout.heap_base + _FREELIST_SHARE,
        layout.heap_limit)
    global_table = GlobalTableManager(machine)

    machine.freelist = freelist
    machine.buddy = buddy
    machine.global_table = global_table
    machine.heap_freelist_malloc = freelist.malloc
    machine.heap_freelist_free = lambda addr: freelist.free(addr)

    wrapped = WrappedAllocator(machine, freelist, global_table)
    subheap = SubheapAllocator(machine, buddy, global_table)
    machine.wrapped_allocator = wrapped
    machine.subheap_allocator = subheap
    if machine.program.allocator == "subheap":
        allocator = subheap
        allocator_name = "subheap"
    else:
        allocator = wrapped
        allocator_name = "wrapped"
    machine.ifp_allocator = allocator

    # -- temporal lock-and-key plumbing (repro.temporal) ---------------------
    # The registry lives on the machine; the mint/release seams live here
    # so every allocator (freelist-backed wrapped, pool-backed subheap,
    # and their global-table fallbacks) goes through one code path.
    registry = getattr(machine, "temporal", None)
    temporal_cfg = machine.ifp.config
    if registry is not None and machine.config.temporal == "quarantine":
        # Quarantine policy: freed storage is never reinserted into any
        # free pool, so a stale key can never collide with a fresh one.
        freelist.quarantine = True
        buddy.quarantine = True
        subheap.quarantine = True

    def temporal_mint(tagged, bnd):
        """Mint a generation key for a freshly allocated tagged pointer."""
        if registry is None or bnd is None or not (tagged >> 60) & 3:
            return tagged, bnd  # temporal off, or legacy-degraded alloc
        base = bnd.lower
        key = registry.mint(base, bnd.upper - bnd.lower)
        return (with_temporal_key(tagged, key, temporal_cfg),
                bnd.with_temporal(base, key))

    def temporal_check_free(pointer):
        """Lock==key probe before a structural free; raises on violation."""
        base = address_of(pointer)
        key = temporal_key_of(pointer, temporal_cfg)
        return check_free(registry, pointer, base, key, allocator_name)

    machine.temporal_mint = temporal_mint

    # glibc __ctype_b_loc support: a traits table plus the pointer slot.
    table_addr, _c, _i = freelist.malloc(256 * 2)
    slot_addr, _c, _i = freelist.malloc(8)
    machine.memory.store_u64(slot_addr, table_addr)
    machine.ctype_table_slot = slot_addr

    local_offset = LocalOffsetScheme(machine.config.ifp)
    getptr_cache: Dict[str, int] = {}
    machine.getptr_cache = getptr_cache

    builtins: Dict[str, callable] = dict(LIBC_BUILTINS)

    # -- baseline allocator entry points -----------------------------------

    def bi_malloc(mach, args, bounds):
        address, cycles, instrs = freelist.malloc(args[0])
        return address, None, cycles, instrs

    def bi_calloc(mach, args, bounds):
        total = args[0] * args[1]
        address, cycles, instrs = freelist.malloc(total)
        if address:
            mach.memory.fill(address, 0, total)
            cycles += mach.hierarchy.access_cycles(address, total, True)
            instrs += total // 8
        return address, None, cycles, instrs

    def bi_free(mach, args, bounds):
        cycles, instrs = freelist.free(address_of(args[0]))
        return 0, None, cycles, instrs

    def bi_realloc(mach, args, bounds):
        old = address_of(args[0])
        new, cycles, instrs = freelist.malloc(args[1])
        if old and new:
            old_size = freelist.usable_size(old)
            count = min(old_size, args[1])
            mach.memory.copy(new, old, count)
            cycles += count // 8
            free_cycles, free_instrs = freelist.free(old)
            cycles += free_cycles
            instrs += free_instrs
        return new, None, cycles, instrs

    builtins["malloc"] = bi_malloc
    builtins["calloc"] = bi_calloc
    builtins["free"] = bi_free
    builtins["realloc"] = bi_realloc

    # -- IFP runtime allocator entry points ------------------------------------

    def ifp_malloc(mach, args, bounds):
        tagged, bnd, cycles, instrs = allocator.malloc(args[0], args[1],
                                                       args[2])
        tagged, bnd = temporal_mint(tagged, bnd)
        return tagged, bnd, cycles, instrs

    def ifp_calloc(mach, args, bounds):
        total = args[0] * args[1]
        tagged, bnd, cycles, instrs = allocator.malloc(total, args[2],
                                                       args[3])
        if tagged:
            address = address_of(tagged)
            mach.memory.fill(address, 0, total)
            cycles += mach.hierarchy.access_cycles(address, total, True)
            instrs += total // 8
        tagged, bnd = temporal_mint(tagged, bnd)
        return tagged, bnd, cycles, instrs

    def ifp_realloc(mach, args, bounds):
        old_tagged, new_size = args[0], args[1]
        lt, elem = args[2], args[3]
        old_address = address_of(old_tagged)
        if registry is not None and old_address:
            # A stale/dangling old pointer must trap before any copying;
            # on success the old lock dies below, so every pre-realloc
            # pointer (shrink or grow) detects as stale afterwards.
            temporal_check_free(old_tagged)
        new_tagged, bnd, cycles, instrs = allocator.malloc(new_size, lt, elem)
        if old_address and new_tagged:
            old_size = allocator.usable_size(old_tagged)
            count = min(old_size, new_size)
            if count:
                mach.memory.copy(address_of(new_tagged), old_address, count)
                cycles += count // 8
            free_cycles, free_instrs = allocator.free(old_tagged)
            cycles += free_cycles
            instrs += free_instrs
            if registry is not None:
                registry.release(old_address)
        new_tagged, bnd = temporal_mint(new_tagged, bnd)
        return new_tagged, bnd, cycles, instrs

    def ifp_free(mach, args, bounds):
        if registry is not None:
            temporal_check_free(args[0])
        cycles, instrs = allocator.free(args[0])
        if registry is not None:
            registry.release(address_of(args[0]))
        return 0, None, cycles, instrs

    builtins["__ifp_malloc"] = ifp_malloc
    builtins["__ifp_calloc"] = ifp_calloc
    builtins["__ifp_realloc"] = ifp_realloc
    builtins["__ifp_free"] = ifp_free

    # -- oversize-local registration (global-table fallback) ----------------------

    def ifp_register_gt(mach, args, bounds):
        address, size, lt = args[0] & ((1 << 48) - 1), args[1], args[2]
        if mach.config.policy.global_table_exhaustion == STRICT:
            registered = global_table.register(address, size, lt)
        else:
            registered = global_table.try_register(address, size, lt)
        mach.stats.local_objects += 1
        if lt:
            mach.stats.local_objects_lt += 1
        if registered is None:
            # Table full under degrade policy: the oversize local keeps
            # its storage but escapes as an unprotected legacy pointer.
            mach.stats.degraded_allocs += 1
            if mach.obs is not None:
                mach.obs.degrade("global_table", "legacy_pointer", size,
                                 address)
                mach.obs.alloc_decision("global_table", "legacy_degrade",
                                        size, address)
            return address, None, 4, 4
        tagged, cycles, instrs = registered
        if mach.obs is not None:
            mach.obs.alloc_decision("global_table", "oversize_local",
                                    size, address)
            mach.obs.scheme_assigned("local", tagged, size, bool(lt))
        return tagged, Bounds(address, address + size), cycles, instrs

    def ifp_deregister_gt(mach, args, bounds):
        # Degraded locals come back as legacy pointers with no row to
        # release; clearing row 0 by mistake would corrupt a live entry.
        if unpack_tag(args[0]).scheme is not Scheme.GLOBAL_TABLE:
            return 0, None, 2, 2
        cycles, instrs = global_table.deregister(args[0])
        return 0, None, cycles, instrs

    builtins["__ifp_register_gt"] = ifp_register_gt
    builtins["__ifp_deregister_gt"] = ifp_deregister_gt

    # -- per-global getptr functions ------------------------------------------------

    def make_getptr(name: str):
        def getptr(mach, args, bounds):
            tagged = getptr_cache.get(name)
            if tagged is None:
                address, size, lt_addr, _reg = mach.image.global_info[name]
                if local_offset.supports_size(size):
                    md = local_offset.write_metadata(
                        mach.memory, address, size, lt_addr,
                        mach.config.mac_key)
                    cycles = mach.hierarchy.access_cycles(
                        md, METADATA_BYTES, True) + 20
                    tagged = local_offset.make_pointer(address, address,
                                                       size)
                    instrs = 20
                else:
                    if (mach.config.policy.global_table_exhaustion
                            == STRICT):
                        registered = global_table.register(
                            address, size, lt_addr)
                    else:
                        registered = global_table.try_register(
                            address, size, lt_addr)
                    if registered is None:
                        mach.stats.degraded_allocs += 1
                        if mach.obs is not None:
                            mach.obs.degrade("global_table",
                                             "legacy_pointer", size,
                                             address)
                        registered = (address, 4, 4)
                    tagged, cycles, instrs = registered
                mach.stats.global_objects += 1
                if lt_addr:
                    mach.stats.global_objects_lt += 1
                if mach.obs is not None:
                    mach.obs.scheme_assigned("global", tagged, size,
                                             bool(lt_addr))
                getptr_cache[name] = tagged
                if unpack_tag(tagged).scheme is Scheme.LEGACY:
                    bound = None  # degraded: no metadata, no checking
                else:
                    bound = Bounds(address_of(tagged),
                                   address_of(tagged) + size)
                machine_bounds_cache[name] = bound
                return tagged, bound, cycles, instrs
            return tagged, machine_bounds_cache[name], 4, 4
        return getptr

    machine_bounds_cache: Dict[str, Bounds] = {}
    for gname, info in machine.image.global_info.items():
        if info[3]:  # needs registration
            builtins[f"__ifp_getptr_{gname}"] = make_getptr(gname)

    # Comparison-baseline runtimes.
    if machine.program.defense == "asan":
        from repro.baselines.asan import install_asan_runtime
        builtins.update(install_asan_runtime(machine))

    return builtins
