"""The wrapped allocator (paper Section 4.2.1).

A thin wrapper over the glibc-model free-list allocator: it transparently
over-allocates so the local-offset metadata record can be appended to each
object, and falls back to the global table for objects beyond the
local-offset size limit.  This is the paper's model of "the impact on
existing allocators that cannot support the subheap scheme": per-object
metadata is scattered across the heap, which is what inflates cache
misses on metadata-hungry workloads (health, ft).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ifp.bounds import Bounds
from repro.ifp.poison import Poison
from repro.ifp.schemes.local_offset import (
    LocalOffsetScheme, METADATA_BYTES, align_up,
)
from repro.ifp.tag import Scheme, address_of, unpack_tag
from repro.resil.policy import STRICT

#: modelled extra instructions for metadata setup / teardown
_REGISTER_COST = 12
_DEREGISTER_COST = 6


class WrappedAllocator:
    def __init__(self, machine, freelist, global_table):
        self.machine = machine
        self.freelist = freelist
        self.global_table = global_table
        config = machine.config.ifp
        self.config = config
        self.scheme = LocalOffsetScheme(config)

    def malloc(self, size: int, layout_ptr: int,
               elem_size: int) -> Tuple[int, Optional[Bounds], int, int]:
        """Allocate + register; returns (tagged ptr, bounds, cycles, instrs)."""
        machine = self.machine
        if size <= 0:
            size = 1
        # Layout tables only apply when the allocation is exactly one
        # object of the deduced type (arrays would mis-narrow).
        if elem_size and size != elem_size:
            layout_ptr = 0
        use_local = ("local_offset" in self.config.schemes_enabled
                     and self.scheme.supports_size(size))
        if use_local:
            footprint = self.scheme.footprint(size)
            address, cycles, instrs = self.freelist.malloc(footprint)
            if address == 0:
                return 0, None, cycles, instrs
            md_addr = self.scheme.write_metadata(
                machine.memory, address, size, layout_ptr,
                machine.config.mac_key)
            cycles += machine.hierarchy.access_cycles(
                md_addr, METADATA_BYTES, True)
            cycles += _REGISTER_COST + self.config.mac_cycles
            instrs += _REGISTER_COST
            tagged = self.scheme.make_pointer(address, address, size)
            bounds = Bounds(address, address + size)
        else:
            address, cycles, instrs = self.freelist.malloc(size)
            if address == 0:
                return 0, None, cycles, instrs
            if machine.config.policy.global_table_exhaustion == STRICT:
                registered = self.global_table.register(
                    address, size, layout_ptr)
            else:
                registered = self.global_table.try_register(
                    address, size, layout_ptr)
            if registered is None:
                # Table full under the degrade policy: the object keeps
                # its memory but loses its metadata — hand out an
                # untagged legacy pointer (paper Section 6 fallback).
                machine.stats.heap_objects += 1
                machine.stats.degraded_allocs += 1
                obs = machine.obs
                if obs is not None:
                    obs.degrade("global_table", "legacy_pointer", size,
                                address)
                    obs.alloc_decision("wrapped", "legacy_degrade", size,
                                       address)
                return address, None, cycles + 2, instrs + 2
            tagged, reg_cycles, reg_instrs = registered
            cycles += reg_cycles
            instrs += reg_instrs
            bounds = Bounds(address, address + size)
        machine.stats.heap_objects += 1
        if layout_ptr:
            machine.stats.heap_objects_lt += 1
        obs = machine.obs
        if obs is not None:
            obs.alloc_decision("wrapped",
                               "local_offset" if use_local
                               else "global_table_fallback",
                               size, address)
            obs.scheme_assigned("heap", tagged, size, bool(layout_ptr))
        return tagged, bounds, cycles, instrs

    def free(self, pointer: int) -> Tuple[int, int]:
        machine = self.machine
        address = address_of(pointer)
        if address == 0:
            return 2, 2
        tag = unpack_tag(pointer)
        cycles = 0
        instrs = _DEREGISTER_COST
        if tag.scheme is Scheme.GLOBAL_TABLE:
            base, _size, _lt = self.global_table.row_info(pointer)
            dereg_cycles, dereg_instrs = self.global_table.deregister(pointer)
            cycles += dereg_cycles
            instrs += dereg_instrs
            address = base or address
        elif tag.scheme is Scheme.LOCAL_OFFSET:
            # Clear the appended metadata (deregistration).
            size = self._local_size(pointer)
            if size:
                self.scheme.clear_metadata(machine.memory, address, size)
                md = self.scheme.metadata_address(address, size)
                cycles += machine.hierarchy.access_cycles(
                    md, METADATA_BYTES, True)
        free_cycles, free_instrs = self.freelist.free(address)
        machine.stats.heap_frees += 1
        if machine.obs is not None:
            machine.obs.alloc_decision("wrapped", "free", 0, address)
        return cycles + free_cycles, instrs + free_instrs

    def usable_size(self, pointer: int) -> int:
        tag = unpack_tag(pointer)
        if tag.scheme is Scheme.GLOBAL_TABLE:
            _base, size, _lt = self.global_table.row_info(pointer)
            return size
        if tag.scheme is Scheme.LOCAL_OFFSET:
            return self._local_size(pointer) or 0
        return self.freelist.usable_size(address_of(pointer))

    def layout_ptr_of(self, pointer: int) -> int:
        tag = unpack_tag(pointer)
        address = address_of(pointer)
        if tag.scheme is Scheme.LOCAL_OFFSET:
            size = self._local_size(pointer)
            if size:
                md = self.scheme.metadata_address(address, size)
                return self.machine.memory.load_int(md, 8)
        if tag.scheme is Scheme.GLOBAL_TABLE:
            return self.global_table.row_info(pointer)[2]
        return 0

    def _local_size(self, pointer: int) -> int:
        """Recover the object size of a local-offset heap allocation from
        the freelist chunk size (the metadata record sits at the end)."""
        address = address_of(pointer)
        usable = self.freelist.usable_size(address)
        # The wrapped malloc over-allocated exactly
        # align_up(size, granule) + METADATA_BYTES, and the free-list
        # rounding adds nothing beyond that, so the record sits at the end.
        md_offset = usable - METADATA_BYTES
        if md_offset < 0:
            return 0
        size = self.machine.memory.load_int(address + md_offset + 8, 2)
        if size and align_up(size, self.config.granule) == md_offset:
            return size
        return 0
