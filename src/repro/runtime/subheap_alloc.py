"""The subheap allocator: a pool allocator over the buddy allocator
(paper Section 4.2.1).

Objects are grouped into *pools* keyed by (slot size, layout table): only
identically-sized, identically-typed objects share a block, so one 32-byte
metadata record per block describes every object in it.  Blocks come from
the buddy allocator (power-of-two size and alignment) and register one
subheap control-register *region* per block-size class.

Size classes:

=============  ===========
object size    block order
=============  ===========
≤ 240 B        12 (4 KiB)
≤ 1 KiB        14 (16 KiB)
≤ 4 KiB        16 (64 KiB)
≤ 16 KiB       18 (256 KiB)
larger         global-table fallback
=============  ===========

The shared metadata is what gives this allocator the paper's two headline
behaviours: (a) no per-object allocator header → *negative* memory
overhead for small-object workloads, (b) metadata cache hits amortised
across all objects in a block → far fewer promote-induced misses than the
wrapped allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidFree, ResourceExhausted
from repro.ifp.bounds import Bounds
from repro.ifp.schemes.subheap import (
    METADATA_BYTES, SubheapRegion, SubheapScheme,
)
from repro.ifp.tag import Scheme, address_of, unpack_tag
from repro.resil.policy import STRICT

#: (max slot size, block order) classes, ascending.  Objects above the
#: last class go to the free-list + global-table fallback: pooling unique
#: large arrays would waste most of a block.
_SIZE_CLASSES: Tuple[Tuple[int, int], ...] = (
    (240, 12), (1008, 14), (4064, 16),
)

_ALLOC_HOT_COST = 8      #: pop-a-free-slot fast path
_NEW_BLOCK_COST = 40     #: metadata init + pool bookkeeping
_FREE_COST = 7


@dataclass
class _Pool:
    slot_size: int
    object_size: int
    layout_ptr: int
    region: SubheapRegion
    register_index: int
    free_slots: List[int] = field(default_factory=list)
    bump_block: int = 0    #: block currently being carved
    bump_next: int = 0     #: next fresh slot in bump_block
    bump_end: int = 0
    blocks: List[int] = field(default_factory=list)


class SubheapAllocator:
    def __init__(self, machine, buddy, global_table):
        self.machine = machine
        self.buddy = buddy
        self.global_table = global_table
        self.config = machine.config.ifp
        self.scheme = SubheapScheme(self.config)
        self.pools: Dict[Tuple[int, int], _Pool] = {}
        #: block base -> pool (for free())
        self.block_owner: Dict[int, _Pool] = {}
        #: temporal quarantine (repro.temporal): freed slots are never
        #: returned to ``free_slots``, so pool reuse cannot alias a
        #: dangling pointer's address (the temporal registry catches the
        #: double free before the structural check would)
        self.quarantine = False
        self.quarantined_bytes = 0

    # -- allocation --------------------------------------------------------------

    def malloc(self, size: int, layout_ptr: int,
               elem_size: int) -> Tuple[int, Optional[Bounds], int, int]:
        machine = self.machine
        if size <= 0:
            size = 1
        if elem_size and size != elem_size:
            layout_ptr = 0  # arrays cannot reuse the element's table
        order = self._class_for(size)
        if order is None:
            return self._fallback_malloc(size, layout_ptr)
        # Pools are keyed by the exact (object size, layout table) pair:
        # only identically-sized, identically-typed objects share a block,
        # which is the subheap scheme's correctness requirement.
        cycles = 0
        instrs = _ALLOC_HOT_COST
        pool = self.pools.get((size, layout_ptr))
        if pool is None:
            try:
                pool = self._new_pool(size, layout_ptr, order)
            except ResourceExhausted:
                # Out of subheap control registers.  Strict policy lets
                # the trap propagate; degrade policy demotes this object
                # to the global-table scheme (and from there, possibly
                # to an untagged legacy pointer).
                if (machine.config.policy.subheap_register_exhaustion
                        == STRICT):
                    raise
                machine.stats.degraded_allocs += 1
                if machine.obs is not None:
                    machine.obs.degrade("subheap_registers",
                                        "global_table_fallback", size, 0)
                return self._fallback_malloc(size, layout_ptr)
            self.pools[(size, layout_ptr)] = pool
        if pool.free_slots:
            address = pool.free_slots.pop()
            action = "pool_reuse"
        elif pool.bump_next < pool.bump_end:
            address = pool.bump_next
            pool.bump_next += pool.slot_size
            action = "pool_bump"
        else:
            block_cycles, block_instrs = self._add_block(pool, order)
            cycles += block_cycles
            instrs += block_instrs
            if pool.bump_next >= pool.bump_end:
                return 0, None, cycles, instrs  # out of memory
            address = pool.bump_next
            pool.bump_next += pool.slot_size
            action = "pool_grow"
        tagged = self.scheme.make_pointer(address, pool.register_index)
        bounds = Bounds(address, address + pool.object_size)
        machine.stats.heap_objects += 1
        if layout_ptr:
            machine.stats.heap_objects_lt += 1
        obs = machine.obs
        if obs is not None:
            obs.alloc_decision("subheap", action, size, address)
            obs.scheme_assigned("heap", tagged, size, bool(layout_ptr))
        return tagged, bounds, cycles + instrs, instrs

    def free(self, pointer: int) -> Tuple[int, int]:
        machine = self.machine
        address = address_of(pointer)
        if address == 0:
            return 2, 2
        tag = unpack_tag(pointer)
        if tag.scheme is Scheme.GLOBAL_TABLE:
            base, _size, _lt = self.global_table.row_info(pointer)
            cycles, instrs = self.global_table.deregister(pointer)
            machine.heap_freelist_free(base or address)
            machine.stats.heap_frees += 1
            return cycles + _FREE_COST, instrs + _FREE_COST
        pool = self._pool_of(address)
        if pool is None:
            if (tag.scheme is Scheme.LEGACY
                    and machine.freelist.base <= address
                    < machine.freelist.brk):
                # A degraded (untagged) allocation: its memory came from
                # the free-list fallback, so route the free there.
                cycles, instrs = machine.heap_freelist_free(address)
                machine.stats.heap_frees += 1
                if machine.obs is not None:
                    machine.obs.alloc_decision("subheap", "legacy_free",
                                               0, address)
                return cycles + _FREE_COST, instrs + _FREE_COST
            # Frees of foreign pointers are guest bugs surfaced as traps.
            raise InvalidFree(
                f"subheap free of unknown pointer 0x{address:x}: "
                f"no pool owns this block",
                address=address, allocator="subheap",
                kind="unknown_pointer")
        block = address & ~((1 << pool.region.block_log2) - 1)
        slot_start = _align(METADATA_BYTES, max(self.config.granule, 16))
        if (address - block - slot_start) % pool.slot_size:
            raise InvalidFree(
                f"subheap free of interior pointer 0x{address:x}: "
                f"not a slot base in pool(size={pool.object_size}, "
                f"slot={pool.slot_size}) of block 0x{block:x}",
                address=address, allocator="subheap",
                kind="interior_pointer")
        if block == pool.bump_block and address >= pool.bump_next:
            raise InvalidFree(
                f"subheap free of unallocated slot 0x{address:x}: "
                f"beyond bump pointer 0x{pool.bump_next:x} in "
                f"block 0x{block:x}",
                address=address, allocator="subheap",
                kind="unknown_pointer")
        if address in pool.free_slots:
            raise InvalidFree(
                f"double free of 0x{address:x}: slot already on the "
                f"free list of pool(size={pool.object_size}) "
                f"in block 0x{block:x}",
                address=address, allocator="subheap", kind="double_free")
        if self.quarantine:
            self.quarantined_bytes += pool.slot_size
        else:
            pool.free_slots.append(address)
        machine.stats.heap_frees += 1
        if machine.obs is not None:
            machine.obs.alloc_decision("subheap", "free", 0, address)
        return _FREE_COST, _FREE_COST

    def usable_size(self, pointer: int) -> int:
        tag = unpack_tag(pointer)
        if tag.scheme is Scheme.GLOBAL_TABLE:
            return self.global_table.row_info(pointer)[1]
        address = address_of(pointer)
        pool = self._pool_of(address)
        if pool is not None:
            return pool.object_size
        freelist = self.machine.freelist
        if freelist.base <= address < freelist.brk:
            # Degraded legacy allocation backed by the free list.
            return freelist.usable_size(address)
        return 0

    def layout_ptr_of(self, pointer: int) -> int:
        tag = unpack_tag(pointer)
        if tag.scheme is Scheme.GLOBAL_TABLE:
            return self.global_table.row_info(pointer)[2]
        pool = self._pool_of(address_of(pointer))
        return pool.layout_ptr if pool else 0

    # -- internals ------------------------------------------------------------------

    def _class_for(self, size: int) -> Optional[int]:
        slot = _align(size, self.config.granule)
        for limit, order in _SIZE_CLASSES:
            if slot <= limit:
                return order
        return None

    def _fallback_malloc(self, size: int, layout_ptr: int):
        """Oversize allocations: raw free-list memory + global table row."""
        machine = self.machine
        address, cycles, instrs = machine.heap_freelist_malloc(size)
        if address == 0:
            return 0, None, cycles, instrs
        if machine.config.policy.global_table_exhaustion == STRICT:
            registered = self.global_table.register(
                address, size, layout_ptr)
        else:
            registered = self.global_table.try_register(
                address, size, layout_ptr)
        if registered is None:
            # Global table also full: last rung of the degradation
            # ladder — an untagged legacy pointer with no metadata.
            machine.stats.heap_objects += 1
            machine.stats.degraded_allocs += 1
            obs = machine.obs
            if obs is not None:
                obs.degrade("global_table", "legacy_pointer", size,
                            address)
                obs.alloc_decision("subheap", "legacy_degrade", size,
                                   address)
            return address, None, cycles + 2, instrs + 2
        tagged, reg_cycles, reg_instrs = registered
        machine.stats.heap_objects += 1
        if layout_ptr:
            machine.stats.heap_objects_lt += 1
        obs = machine.obs
        if obs is not None:
            obs.alloc_decision("subheap", "oversize_fallback", size,
                               address)
            obs.scheme_assigned("heap", tagged, size, bool(layout_ptr))
        return (tagged, Bounds(address, address + size),
                cycles + reg_cycles, instrs + reg_instrs)

    def _new_pool(self, object_size: int, layout_ptr: int,
                  order: int) -> _Pool:
        region = SubheapRegion(order, 0)
        register_index = self.machine.ifp.control.allocate_subheap_register(
            region)
        slot_size = _align(object_size, self.config.granule)
        return _Pool(slot_size=slot_size, object_size=object_size,
                     layout_ptr=layout_ptr, region=region,
                     register_index=register_index)

    def _add_block(self, pool: _Pool, order: int) -> Tuple[int, int]:
        block, instrs = self.buddy.alloc(order)
        if block == 0:
            return instrs, instrs
        slot_start = _align(METADATA_BYTES, max(self.config.granule, 16))
        block_size = 1 << order
        slot_count = (block_size - slot_start) // pool.slot_size
        slot_end = slot_start + slot_count * pool.slot_size
        self.scheme.write_block_metadata(
            self.machine.memory, block, pool.region, slot_start, slot_end,
            pool.slot_size, pool.object_size, pool.layout_ptr,
            self.machine.config.mac_key)
        cycles = self.machine.hierarchy.access_cycles(
            block, METADATA_BYTES, True)
        pool.bump_block = block
        pool.bump_next = block + slot_start
        pool.bump_end = block + slot_end
        pool.blocks.append(block)
        self.block_owner[block] = pool
        return cycles + _NEW_BLOCK_COST, instrs + _NEW_BLOCK_COST

    def _pool_of(self, address: int) -> Optional[_Pool]:
        for _limit, order in _SIZE_CLASSES:
            block = address & ~((1 << order) - 1)
            pool = self.block_owner.get(block)
            if pool is not None and pool.region.block_log2 == order:
                return pool
        return None


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)
