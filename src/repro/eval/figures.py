"""Figures 10-12: runtime overhead, new-instruction share, memory overhead.

Each ``figure*_series`` function returns ``{series name: [(benchmark,
value), ...]}`` with values as *fractions* (0.12 = 12 %), matching the
paper's percentage axes.  ``format_figure`` renders an ASCII view with
the geometric means the paper quotes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.eval.harness import Sweep

Series = Dict[str, List[Tuple[str, float]]]

#: programs the paper excludes from Figure 12 (footprints too small for
#: `time -v` to resolve)
FIGURE12_EXCLUDED = ("ks", "yacr2", "coremark")


def geomean(values: List[float]) -> float:
    """Geometric mean of (1 + overhead) values, returned as overhead."""
    if not values:
        return 0.0
    log_sum = sum(math.log(max(1.0 + v, 1e-9)) for v in values)
    return math.exp(log_sum / len(values)) - 1.0


def figure10_series(sweep: Optional[Sweep] = None) -> Series:
    """Runtime (cycle) overhead vs baseline, four series."""
    sweep = sweep or Sweep()
    series: Series = {"subheap": [], "wrapped": [],
                      "subheap-np": [], "wrapped-np": []}
    for workload in sweep.workloads:
        base = sweep.run(workload, "baseline").cycles
        for config in series:
            cycles = sweep.run(workload, config).cycles
            series[config].append((workload.name, cycles / base - 1.0))
    return series


def figure11_series(sweep: Optional[Sweep] = None) -> Series:
    """New-instruction counts as a share of baseline instructions,
    decomposed into promote / IFP arithmetic / bounds load-store."""
    sweep = sweep or Sweep()
    series: Series = {}
    for config in ("subheap", "wrapped"):
        promote, arith, bounds_ls = [], [], []
        for workload in sweep.workloads:
            base = sweep.run(workload, "baseline").instructions
            stats = sweep.run(workload, config).stats
            promote.append((workload.name,
                            stats.promote_instructions / base))
            arith.append((workload.name,
                          stats.ifp_arith_instructions / base))
            bounds_ls.append((workload.name,
                              stats.bounds_ls_instructions / base))
        series[f"{config}/promote"] = promote
        series[f"{config}/ifp-arith"] = arith
        series[f"{config}/bounds-ls"] = bounds_ls
    return series


def figure12_series(sweep: Optional[Sweep] = None,
                    excluded: Tuple[str, ...] = FIGURE12_EXCLUDED) -> Series:
    """Memory overhead (peak mapped bytes) vs baseline."""
    sweep = sweep or Sweep()
    series: Series = {"subheap": [], "wrapped": []}
    for workload in sweep.workloads:
        if workload.name in excluded:
            continue
        base = sweep.run(workload, "baseline").memory
        for config in series:
            memory = sweep.run(workload, config).memory
            series[config].append((workload.name, memory / base - 1.0))
    return series


def format_figure(series: Series, title: str,
                  as_percent: bool = True) -> str:
    names = sorted({name for points in series.values()
                    for name, _v in points})
    lines = [title,
             f"{'benchmark':13s} " + " ".join(f"{s:>12s}"
                                              for s in sorted(series))]
    by_series = {s: dict(points) for s, points in series.items()}
    for name in names:
        row = [f"{name:13s}"]
        for s in sorted(series):
            value = by_series[s].get(name)
            if value is None:
                row.append(f"{'—':>12s}")
            elif as_percent:
                row.append(f"{value * 100:11.1f}%")
            else:
                row.append(f"{value:12.3f}")
        lines.append(" ".join(row))
    gm_row = [f"{'geo-mean':13s}"]
    for s in sorted(series):
        gm = geomean([v for _n, v in series[s]])
        gm_row.append(f"{gm * 100:11.1f}%" if as_percent else f"{gm:12.3f}")
    lines.append(" ".join(gm_row))
    return "\n".join(lines)
