"""Tables 1-3: the paper's static comparison tables as data.

Table 2's rows are additionally *verified against the implementation* by
the benchmark harness (``benchmarks/bench_table2_schemes.py``): each
claimed constraint (base-address control, size limit, object-count limit)
is checked against the corresponding scheme class's actual behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Table1Row:
    defense: str
    metadata_subject: str     #: Pointer / Object / Memory / None
    granularity: str          #: Subobject / Object / Partial
    lost_compatibility: str   #: '' | 'binary' | 'source' | 'binary+source'
    required_feature: str     #: '' | 'shadow-memory' | 'tagged-memory'
    tagged_pointer: bool
    hardware: bool = False    #: hardware-assisted (vs software-only)


TABLE1_ROWS: List[Table1Row] = [
    Table1Row("Intel MPX", "Pointer", "Subobject", "", "shadow-memory", False, True),
    Table1Row("HardBound", "Pointer", "Subobject", "", "shadow-memory", False, True),
    Table1Row("WatchdogLite", "Pointer", "Subobject", "", "shadow-memory", False, True),
    Table1Row("SoftBound", "Pointer", "Subobject", "", "shadow-memory", False, False),
    Table1Row("CHERI", "Pointer", "Subobject", "binary", "tagged-memory", False, True),
    Table1Row("Shakti-MS", "Pointer+Object", "Subobject", "binary+source", "", False, True),
    Table1Row("ALEXIA", "Pointer+Object", "Subobject", "binary", "", False, True),
    Table1Row("BaggyBound", "Object/None", "Object", "binary", "shadow-memory", True, False),
    Table1Row("PAriCheck", "Object", "Object", "", "shadow-memory", False, False),
    Table1Row("AddressSanitizer", "Memory", "Partial", "", "shadow-memory", False, False),
    Table1Row("REST", "Memory", "Partial", "", "tagged-memory", False, True),
    Table1Row("Califorms", "Memory", "Partial", "binary+source", "tagged-memory", False, True),
    Table1Row("Prober", "None", "Partial", "", "", False, False),
    Table1Row("Low-Fat Pointer", "None", "Object", "", "", True, True),
    Table1Row("SMA", "None", "Object", "", "", True, False),
    Table1Row("CUP", "Object", "Object", "", "", True, False),
    Table1Row("FRAMER", "Object", "Object", "", "", True, False),
    Table1Row("AOS", "Object", "Object", "", "", True, True),
    Table1Row("EffectiveSan", "Object", "Subobject", "", "", True, False),
    Table1Row("ARM MTE", "Memory", "Partial", "", "tagged-memory", True, True),
    Table1Row("In-Fat Pointer", "Object", "Subobject", "", "", True, True),
]


@dataclass(frozen=True)
class Table2Row:
    scheme: str
    constrains_base_address: bool   #: B — needs control of object placement
    limits_object_size: bool        #: S
    limits_object_count: bool       #: C
    use_scenario: str


TABLE2_ROWS: List[Table2Row] = [
    Table2Row("Local Offset Scheme", False, True, False,
              "Small Objects, Local Variables"),
    Table2Row("Subheap Scheme", True, True, False,
              "Heap-allocated Objects"),
    Table2Row("Global Table Scheme", False, False, True,
              "Global Arrays, Fallback"),
]


@dataclass(frozen=True)
class Table3Row:
    mnemonic: str
    description: str
    variants: bool = False


TABLE3_ROWS: List[Table3Row] = [
    Table3Row("promote", "pointer bounds retrieval"),
    Table3Row("ifpmac", "MAC computation"),
    Table3Row("ldbnd", "load bounds from memory"),
    Table3Row("stbnd", "store bounds to memory"),
    Table3Row("ifpbnd", "create pointer bounds with given size"),
    Table3Row("ifpadd", "address computation and tag update"),
    Table3Row("ifpidx", "subobject index update"),
    Table3Row("ifpchk", "(bounds) access size check"),
    Table3Row("ifpextract", "extract fields from IFPR / demote", True),
    Table3Row("ifpmd", "pointer tags manipulation", True),
]


def format_table1() -> str:
    lines = [f"{'defense':18s} {'metadata':16s} {'granularity':12s} "
             f"{'compat loss':13s} {'requires':14s} {'tagged-ptr':>10s}"]
    for r in TABLE1_ROWS:
        lines.append(
            f"{r.defense:18s} {r.metadata_subject:16s} "
            f"{r.granularity:12s} {r.lost_compatibility or '-':13s} "
            f"{r.required_feature or '-':14s} "
            f"{'yes' if r.tagged_pointer else 'no':>10s}")
    return "\n".join(lines)


def format_table2() -> str:
    lines = [f"{'scheme':22s} {'B':>2s} {'S':>2s} {'C':>2s}  use scenario"]
    for r in TABLE2_ROWS:
        lines.append(
            f"{r.scheme:22s} "
            f"{'B' if r.constrains_base_address else '-':>2s} "
            f"{'S' if r.limits_object_size else '-':>2s} "
            f"{'C' if r.limits_object_count else '-':>2s}  "
            f"{r.use_scenario}")
    return "\n".join(lines)


def format_table3() -> str:
    lines = [f"{'mnemonic':12s} description"]
    for r in TABLE3_ROWS:
        suffix = "  (multiple variants)" if r.variants else ""
        lines.append(f"{r.mnemonic:12s} {r.description}{suffix}")
    return "\n".join(lines)
