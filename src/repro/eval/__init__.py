"""Evaluation harness: regenerates every table and figure of Section 5.

* Table 1/2/3 — static comparison/scheme/instruction tables
  (:mod:`repro.eval.related`);
* Table 4 — dynamic event counts (:mod:`repro.eval.table4`);
* Figure 10/11/12 — runtime, new-instruction, and memory overheads
  (:mod:`repro.eval.figures`);
* Figure 13 — hardware area (:mod:`repro.hwmodel`).
"""

from repro.eval.configs import CONFIG_NAMES, build_options, build_machine_config
from repro.eval.harness import (
    WorkloadRun, run_workload, run_sweep, Sweep, verify_runs_agree,
)
from repro.eval.table4 import table4_rows, format_table4
from repro.eval.figures import (
    figure10_series, figure11_series, figure12_series, format_figure,
    geomean,
)
from repro.eval.related import TABLE1_ROWS, TABLE2_ROWS, TABLE3_ROWS

__all__ = [
    "CONFIG_NAMES", "build_options", "build_machine_config",
    "WorkloadRun", "run_workload", "run_sweep", "Sweep",
    "verify_runs_agree",
    "table4_rows", "format_table4",
    "figure10_series", "figure11_series", "figure12_series",
    "format_figure", "geomean",
    "TABLE1_ROWS", "TABLE2_ROWS", "TABLE3_ROWS",
]
