"""The five program configurations of the paper's Figure 10.

============  ====================================================
name          meaning
============  ====================================================
baseline      uninstrumented, glibc-model allocator
subheap       instrumented, subheap (pool) allocator
wrapped       instrumented, wrapped (libc + metadata) allocator
subheap-np    subheap build with promote executing as a NOP
wrapped-np    wrapped build with promote executing as a NOP
============  ====================================================

The no-promote builds isolate the promote instruction's contribution:
identical instruction streams, but promote performs no metadata access
and produces no bounds (and therefore no implicit checks).
"""

from __future__ import annotations

from repro.compiler import CompilerOptions
from repro.vm import MachineConfig

CONFIG_NAMES = ("baseline", "subheap", "wrapped", "subheap-np", "wrapped-np")


def build_options(name: str) -> CompilerOptions:
    if name == "baseline":
        return CompilerOptions.baseline()
    if name == "subheap":
        return CompilerOptions.subheap()
    if name == "wrapped":
        return CompilerOptions.wrapped()
    if name == "subheap-np":
        return CompilerOptions.subheap(no_promote=True)
    if name == "wrapped-np":
        return CompilerOptions.wrapped(no_promote=True)
    raise ValueError(f"unknown configuration {name!r}")


def build_machine_config(name: str,
                         max_instructions: int = 200_000_000,
                         engine: str = "auto",
                         temporal: str = "off") -> MachineConfig:
    return MachineConfig(no_promote=name.endswith("-np"),
                         max_instructions=max_instructions,
                         engine=engine, temporal=temporal)
