"""Run benchmarks under evaluation configurations and cache results.

A :class:`Sweep` memoises (workload, config, scale) runs so the table and
figure generators — and the pytest-benchmark harnesses — can share one
set of executions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.compiler import compile_source
from repro.errors import (
    OutputDivergence, UnexpectedOutput, WorkloadTimeout, WorkloadTrapped,
)
from repro.eval.configs import (
    CONFIG_NAMES, build_machine_config, build_options,
)
from repro.resil.retry import call_with_retry
from repro.vm import Machine, RunStats
from repro.workloads import Workload, all_workloads


@dataclass
class WorkloadRun:
    """One (workload, configuration) execution."""

    workload: str
    config: str
    scale: int
    stats: RunStats
    output: str
    exit_code: Optional[int]
    #: attached when the run executed under ``observe=True``
    observer: Optional[object] = None

    @property
    def instructions(self) -> int:
        return self.stats.total_instructions

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def memory(self) -> int:
        return self.stats.peak_mapped_bytes


def run_workload(workload: Workload, config: str, scale: int = 1,
                 max_instructions: Optional[int] = None,
                 observe: bool = False,
                 forensics_dir: Optional[str] = None,
                 timeout_seconds: Optional[float] = None,
                 engine: str = "auto",
                 temporal: str = "off") -> WorkloadRun:
    """Compile and execute one workload under one configuration.

    Raises :class:`repro.errors.WorkloadTrapped` when the run traps and
    :class:`repro.errors.UnexpectedOutput` when the workload's output
    sanity check fails, so callers (the sweep, the fuzzing oracle) can
    tell the two apart.  Both errors carry a compact ``RunStats``
    snapshot in their message.

    ``observe=True`` attaches a :class:`repro.obs.Observer` (hot-site
    profiling + trap forensics); on a trap, the forensics report is
    written into ``forensics_dir`` (when given) and its path included
    in the raised error.

    ``timeout_seconds`` arms the wall-clock watchdog: a run that fails
    to finish raises :class:`repro.errors.WorkloadTimeout` (tagged with
    workload/config identity) instead of hanging the harness.

    ``engine`` selects the execution engine ("auto", "fastpath",
    "superblock", or "reference"); the default "auto" prefers the
    fastpath even when an
    observer, tracer, or fault injector is armed — the closure compiler
    then translates a second, guarded-emit variant of each function.
    Both engines are byte-identical in every simulated observable
    (including the emitted event stream), so results never depend on
    this knob.

    ``temporal`` arms the lock-and-key use-after-free policy
    (off/check/quarantine) on the machine; a well-behaved workload must
    be transparent under every setting.
    """
    options = build_options(config)
    program = compile_source(workload.source(scale), options)
    machine = Machine(program, build_machine_config(
        config,
        **({} if max_instructions is None
           else {"max_instructions": max_instructions}),
        engine=engine, temporal=temporal))
    observer = None
    if observe:
        from repro.obs import attach_observer
        observer = attach_observer(machine, profile=True, forensics=True)
    try:
        result = machine.run(timeout_seconds=timeout_seconds)
    except WorkloadTimeout as exc:
        raise exc.with_context(workload.name, config) from None
    if result.trap is not None:
        forensics_path = ""
        if observer is not None and observer.last_report is not None \
                and forensics_dir:
            os.makedirs(forensics_dir, exist_ok=True)
            forensics_path = observer.last_report.write(os.path.join(
                forensics_dir,
                f"{workload.name}-{config}.forensics.txt"))
        raise WorkloadTrapped(workload.name, config, result.trap,
                              stats=result.stats,
                              forensics_path=forensics_path)
    if workload.expected_output \
            and workload.expected_output not in result.output:
        raise UnexpectedOutput(workload.name, config, result.output,
                               workload.expected_output,
                               stats=result.stats)
    return WorkloadRun(workload.name, config, scale, result.stats,
                       result.output, result.exit_code,
                       observer=observer)


def verify_runs_agree(runs: Iterable[WorkloadRun]) -> None:
    """Assert a group of runs of *one* program computed the same answer.

    Compares both stdout and exit code across every run; raises
    :class:`repro.errors.OutputDivergence` naming the disagreeing
    configurations (with each run's compact stats snapshot).  Shared by
    :meth:`Sweep.verify_outputs_agree` and the fuzzing oracle
    (:mod:`repro.fuzz.oracle`).
    """
    runs = list(runs)
    by_config = {run.config: (run.output, run.exit_code) for run in runs}
    if len(set(by_config.values())) > 1:
        names = {run.workload for run in runs}
        raise OutputDivergence(
            "/".join(sorted(names)) or "<program>", by_config,
            stats={run.config: run.stats for run in runs})


class Sweep:
    """Memoising runner over (workload, config) pairs.

    ``timeout_seconds`` arms the per-run wall-clock watchdog; timed-out
    runs are retried up to ``retries`` extra times with exponential
    backoff (wall-clock timeouts are host-load-dependent, so a retry on
    a quieter machine can legitimately succeed) before the final
    :class:`~repro.errors.WorkloadTimeout` propagates.
    """

    def __init__(self, scale: int = 1,
                 workloads: Optional[List[Workload]] = None,
                 timeout_seconds: Optional[float] = None,
                 retries: int = 2, backoff_base: float = 0.1):
        self.scale = scale
        self.workloads = workloads if workloads is not None \
            else all_workloads()
        self.timeout_seconds = timeout_seconds
        self.retries = retries
        self.backoff_base = backoff_base
        self._cache: Dict[Tuple[str, str], WorkloadRun] = {}

    def run(self, workload: Workload, config: str) -> WorkloadRun:
        key = (workload.name, config)
        if key not in self._cache:
            if self.timeout_seconds is None:
                self._cache[key] = run_workload(workload, config,
                                                self.scale)
            else:
                self._cache[key] = call_with_retry(
                    lambda _attempt: run_workload(
                        workload, config, self.scale,
                        timeout_seconds=self.timeout_seconds),
                    attempts=1 + self.retries,
                    base_delay=self.backoff_base)
        return self._cache[key]

    def baseline(self, workload: Workload) -> WorkloadRun:
        return self.run(workload, "baseline")

    def all_runs(self, configs: Iterable[str] = CONFIG_NAMES
                 ) -> List[WorkloadRun]:
        return [self.run(w, c) for w in self.workloads for c in configs]

    def configs_run(self, workload: Workload) -> List[str]:
        """Configurations already executed (cached) for ``workload``."""
        return [config for (name, config) in self._cache
                if name == workload.name]

    def verify_outputs_agree(
            self, configs: Optional[Iterable[str]] = None) -> None:
        """Assert every configuration computes the same answer.

        With ``configs=None`` each workload is checked across whatever
        configurations have actually been run on it (running the three
        standard builds when nothing has); pass an explicit iterable to
        pin the set and force any missing runs.
        """
        pinned = list(configs) if configs is not None else None
        for workload in self.workloads:
            names = pinned if pinned is not None \
                else (self.configs_run(workload)
                      or ["baseline", "subheap", "wrapped"])
            verify_runs_agree(self.run(workload, c) for c in names)


def run_sweep(scale: int = 1,
              configs: Iterable[str] = CONFIG_NAMES,
              workloads: Optional[List[Workload]] = None) -> Sweep:
    """Convenience: build a sweep and execute everything eagerly."""
    sweep = Sweep(scale, workloads)
    sweep.all_runs(configs)
    return sweep
