"""Run benchmarks under evaluation configurations and cache results.

A :class:`Sweep` memoises (workload, config, scale) runs so the table and
figure generators — and the pytest-benchmark harnesses — can share one
set of executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.compiler import compile_source
from repro.eval.configs import (
    CONFIG_NAMES, build_machine_config, build_options,
)
from repro.vm import Machine, RunStats
from repro.workloads import Workload, all_workloads


@dataclass
class WorkloadRun:
    """One (workload, configuration) execution."""

    workload: str
    config: str
    scale: int
    stats: RunStats
    output: str
    exit_code: Optional[int]

    @property
    def instructions(self) -> int:
        return self.stats.total_instructions

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def memory(self) -> int:
        return self.stats.peak_mapped_bytes


def run_workload(workload: Workload, config: str,
                 scale: int = 1) -> WorkloadRun:
    """Compile and execute one workload under one configuration."""
    options = build_options(config)
    program = compile_source(workload.source(scale), options)
    machine = Machine(program, build_machine_config(config))
    result = machine.run()
    if result.trap is not None:
        raise RuntimeError(
            f"{workload.name} [{config}] trapped: {result.trap}")
    if workload.expected_output \
            and workload.expected_output not in result.output:
        raise RuntimeError(
            f"{workload.name} [{config}] produced unexpected output "
            f"{result.output!r}")
    return WorkloadRun(workload.name, config, scale, result.stats,
                       result.output, result.exit_code)


class Sweep:
    """Memoising runner over (workload, config) pairs."""

    def __init__(self, scale: int = 1,
                 workloads: Optional[List[Workload]] = None):
        self.scale = scale
        self.workloads = workloads if workloads is not None \
            else all_workloads()
        self._cache: Dict[Tuple[str, str], WorkloadRun] = {}

    def run(self, workload: Workload, config: str) -> WorkloadRun:
        key = (workload.name, config)
        if key not in self._cache:
            self._cache[key] = run_workload(workload, config, self.scale)
        return self._cache[key]

    def baseline(self, workload: Workload) -> WorkloadRun:
        return self.run(workload, "baseline")

    def all_runs(self, configs: Iterable[str] = CONFIG_NAMES
                 ) -> List[WorkloadRun]:
        return [self.run(w, c) for w in self.workloads for c in configs]

    def verify_outputs_agree(self) -> None:
        """Assert every configuration computes the same answer."""
        for workload in self.workloads:
            outputs = {self.run(workload, c).output
                       for c in ("baseline", "subheap", "wrapped")}
            if len(outputs) != 1:
                raise AssertionError(
                    f"{workload.name}: configurations disagree: {outputs}")


def run_sweep(scale: int = 1,
              configs: Iterable[str] = CONFIG_NAMES,
              workloads: Optional[List[Workload]] = None) -> Sweep:
    """Convenience: build a sweep and execute everything eagerly."""
    sweep = Sweep(scale, workloads)
    sweep.all_runs(configs)
    return sweep
