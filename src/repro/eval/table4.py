"""Table 4: dynamic event counts on object instrumentation, promotion,
and instructions executed."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.eval.harness import Sweep


@dataclass
class Table4Row:
    benchmark: str
    global_objects: int
    global_lt_pct: float
    local_objects: int
    local_lt_pct: float
    heap_objects: int
    heap_lt_pct: float
    valid_promotes: int
    valid_promote_pct: float   #: valid / total promotes
    baseline_instructions: int
    subheap_ratio: float
    wrapped_ratio: float


def _pct(part: int, whole: int) -> float:
    return 100.0 * part / whole if whole else 0.0


def table4_rows(sweep: Optional[Sweep] = None) -> List[Table4Row]:
    """Compute every row of Table 4 (layout-table stats from the subheap
    build, exactly as the paper does)."""
    sweep = sweep or Sweep()
    rows: List[Table4Row] = []
    for workload in sweep.workloads:
        baseline = sweep.run(workload, "baseline")
        subheap = sweep.run(workload, "subheap")
        wrapped = sweep.run(workload, "wrapped")
        stats = subheap.stats
        ifp = stats.ifp
        rows.append(Table4Row(
            benchmark=workload.name,
            global_objects=stats.global_objects,
            global_lt_pct=_pct(stats.global_objects_lt,
                               stats.global_objects),
            local_objects=stats.local_objects,
            local_lt_pct=_pct(stats.local_objects_lt, stats.local_objects),
            heap_objects=stats.heap_objects,
            heap_lt_pct=_pct(stats.heap_objects_lt, stats.heap_objects),
            valid_promotes=ifp.promotes_valid if ifp else 0,
            valid_promote_pct=_pct(ifp.promotes_valid,
                                   ifp.promotes_total) if ifp else 0.0,
            baseline_instructions=baseline.instructions,
            subheap_ratio=subheap.instructions / baseline.instructions,
            wrapped_ratio=wrapped.instructions / baseline.instructions,
        ))
    return rows


def format_table4(rows: List[Table4Row]) -> str:
    header = (f"{'benchmark':13s} {'glob':>6s} {'%LT':>4s} {'local':>8s} "
              f"{'%LT':>4s} {'heap':>8s} {'%LT':>4s} {'v.promote':>10s} "
              f"{'%tot':>5s} {'base instr':>12s} {'subheap':>8s} "
              f"{'wrapped':>8s}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.benchmark:13s} {r.global_objects:6d} "
            f"{r.global_lt_pct:4.0f} {r.local_objects:8d} "
            f"{r.local_lt_pct:4.0f} {r.heap_objects:8d} "
            f"{r.heap_lt_pct:4.0f} {r.valid_promotes:10d} "
            f"{r.valid_promote_pct:5.0f} {r.baseline_instructions:12,d} "
            f"{r.subheap_ratio:7.2f}x {r.wrapped_ratio:7.2f}x")
    return "\n".join(lines)
