"""Deterministic seed derivation: the one splitmix64 in the repo.

Every place the harness needs "a fresh seed that is a pure function of
an existing seed plus an index" goes through this module:

* :func:`derive_seed` — retry reseeding (``repro.resil.retry``) and any
  other attempt-indexed derivation.  Attempt 0 returns the base seed
  unchanged, so the first run is the plain run.
* :func:`shard_seed` — per-shard seed namespaces for ``repro.par``
  campaign shards.  Domain-separated from :func:`derive_seed` so a
  shard index can never collide with a retry attempt of the same base
  seed.
* :func:`backoff_delay` — the exponential backoff schedule shared by
  iteration-level retries (``repro.resil.retry``) and shard-level
  requeues (``repro.par.pool``).  The plain schedule carries no
  jitter; it is the pinned base other schedules derive from.
* :func:`jittered_backoff` — the same schedule de-synchronized with
  *seeded* jitter: the multiplier is a pure function of
  ``(seed, attempt)``, so retry storms spread out without giving up a
  single bit of reproducibility.  Jitter only moves *when* a retry
  runs, never *what* it computes, so checkpoints and merged artifacts
  stay byte-identical to the unjittered schedule.

The mixing function is the splitmix64 finalizer (Steele, Lea & Flood,
"Fast splittable pseudorandom number generators", OOPSLA 2014) — the
same construction numpy's ``SeedSequence`` and Java's
``SplittableRandom`` rely on for exactly this split-without-coordination
use case.  Golden-value tests in ``tests/test_par.py`` pin the output
sequences; they must never change silently, because persisted corpus
entries and resilience matrices record derived seeds.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

#: 2**64 / golden-ratio increment ("gamma") of the splitmix64 stream.
GOLDEN_GAMMA = 0x9E3779B97F4A7C15

#: domain-separation salt for shard seeds (``b"SHARD"`` as an integer).
_SHARD_SALT = 0x5348415244

#: domain-separation salt for backoff jitter (``b"JITTER"``).
_JITTER_SALT = 0x4A4954544552


def splitmix64(z: int) -> int:
    """The splitmix64 finalizer: a 64-bit bijective avalanche mix."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_seed(seed: int, attempt: int) -> int:
    """Deterministically derive the seed for retry ``attempt``.

    Attempt 0 returns ``seed`` unchanged (the first run is the plain
    run); later attempts step the splitmix64 stream ``attempt`` gammas
    from ``seed`` so nearby seeds diverge completely.
    """
    if attempt == 0:
        return seed
    return splitmix64((seed + attempt * GOLDEN_GAMMA) & _MASK64)


def shard_seed(seed: int, shard_index: int) -> int:
    """Deterministically derive the seed namespace of one shard.

    A pure function of ``(seed, shard_index)``, domain-separated from
    :func:`derive_seed` by a salt so shard 3 of seed *s* can never equal
    retry attempt 3 of seed *s*.
    """
    if shard_index < 0:
        raise ValueError(f"shard_index must be >= 0, got {shard_index}")
    return splitmix64(
        (seed ^ _SHARD_SALT) + (shard_index + 1) * GOLDEN_GAMMA)


def backoff_delay(base_delay: float, attempt: int) -> float:
    """Delay before re-running 0-based ``attempt``: ``base * 2**attempt``."""
    return base_delay * (2 ** attempt)


def jittered_backoff(base_delay: float, attempt: int, seed: int, *,
                     spread: float = 0.5) -> float:
    """:func:`backoff_delay` scaled by deterministic seeded jitter.

    The multiplier is uniform in ``[1 - spread/2, 1 + spread/2)``,
    drawn from the splitmix64 stream of ``(seed, attempt)`` under a
    jitter-specific salt — a pure function, so the same shard retries
    on the same schedule in every replay, while *different* shards
    (different seeds) de-synchronize instead of stampeding the host in
    lockstep.  Golden-value tests pin the outputs: persisted event
    streams record these delays.
    """
    delay = backoff_delay(base_delay, attempt)
    word = splitmix64(
        ((seed ^ _JITTER_SALT) + (attempt + 1) * GOLDEN_GAMMA)
        & _MASK64)
    unit = word / float(1 << 64)              # uniform in [0, 1)
    return delay * (1.0 + spread * (unit - 0.5))
