"""High-level entry points: plan, execute, merge — one call per
campaign kind.  This is what the ``--jobs N`` flags on
``python -m repro.fuzz`` / ``python -m repro.resil`` and the
``python -m repro.par`` CLI delegate to.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import EventBus, TraceContext
from repro.par.campaigns import bench_cells, runner_for
from repro.par.checkpoint import Checkpoint
from repro.par.merge import (
    merge_bench, merge_campaign, merge_fuzz_stats, merge_juliet,
)
from repro.par.plan import (
    ShardPlan, default_shard_count, plan_indices, plan_range,
)
from repro.par.pool import PlanResult, run_plan


def _events_sink(path: str) -> Tuple[Callable, Callable]:
    """An obs-bus sink appending one JSON line per shard/steal event;
    returns ``(sink, close)``."""
    handle = open(path, "a")

    def sink(event) -> None:
        handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        handle.flush()
    return sink, handle.close


def execute_plan(plan: ShardPlan, *, jobs: int,
                 checkpoint_dir: Optional[str] = None,
                 shard_timeout: Optional[float] = None,
                 shard_retries: int = 2, backoff_base: float = 0.05,
                 log=None, events_out: Optional[str] = None,
                 bus: Optional[EventBus] = None,
                 stop=None,
                 context: Optional[TraceContext] = None,
                 quarantine: bool = False, chaos=None) -> PlanResult:
    """Run one plan through the pool with checkpoint + event plumbing.

    ``bus`` (when given) receives the shard/steal event stream in
    addition to the on-disk ``events.jsonl`` — the campaign service
    subscribes live progress counters this way.  ``stop`` requests a
    graceful drain; ``quarantine``/``chaos`` configure poison-shard
    dead-lettering and host-fault injection (see
    :func:`repro.par.pool.run_plan`).
    """
    checkpoint = Checkpoint(checkpoint_dir) if checkpoint_dir else None
    bus = bus if bus is not None else EventBus()
    events_path = events_out or (checkpoint.events_path
                                 if checkpoint else None)
    close = None
    if events_path:
        os.makedirs(os.path.dirname(events_path) or ".", exist_ok=True)
        sink, close = _events_sink(events_path)
        bus.subscribe(sink)
    try:
        return run_plan(plan, runner_for(plan.kind), jobs=jobs,
                        shard_timeout=shard_timeout,
                        retries=shard_retries,
                        backoff_base=backoff_base,
                        checkpoint=checkpoint, bus=bus, log=log,
                        stop=stop, context=context,
                        quarantine=quarantine, chaos=chaos)
    finally:
        if close is not None:
            close()


#: back-compat alias (the pre-service private name)
_execute = execute_plan


# ---------------------------------------------------------------------------
# fuzz
# ---------------------------------------------------------------------------

def plan_fuzz(iterations: int, seed: int, *, configs: Sequence[str],
              start: int = 0, clean: bool = True, inject: bool = True,
              corpus_dir: str = "corpus", minimize: bool = True,
              max_attacks: int = 2, plant_bug: bool = False,
              timeout_seconds: Optional[float] = None, retries: int = 2,
              backoff_base: float = 0.1, jobs: int = 1,
              shard_size: int = 0, engine: str = "auto",
              temporal: str = "off") -> ShardPlan:
    """Plan a fuzzing campaign as contiguous iteration-range shards.

    The shards partition ``range(start, start + iterations)``; the
    planner resolves ``plant_bug`` down to the one shard containing the
    campaign's first iteration so the sharded run plants exactly where
    the sequential driver would.
    """
    params = {
        "seed": seed, "configs": list(configs), "clean": clean,
        "inject": inject, "corpus_dir": corpus_dir,
        "minimize": minimize, "max_attacks": max_attacks,
        "plant_bug": False, "timeout_seconds": timeout_seconds,
        "retries": retries, "backoff_base": backoff_base,
        "engine": engine,
    }
    # Only record the temporal policy when armed: a plan built with the
    # default stays byte-identical to pre-temporal plans, so checkpoint
    # fingerprints of old manifests keep verifying.
    if temporal != "off":
        params["temporal"] = temporal
    shards = default_shard_count(iterations, jobs, shard_size)
    plan = plan_range("fuzz", seed, iterations, params=params,
                      shards=shards,
                      shard_params=[{"plant_bug": plant_bug}])
    # plan_range items are relative to 0; shift to the campaign start
    for shard in plan.shards:
        shard.items[0] += start
    plan.params["start"] = start
    plan.params["iterations"] = iterations
    return plan


def parallel_fuzz(plan: ShardPlan, *, jobs: int,
                  checkpoint_dir: Optional[str] = None,
                  shard_timeout: Optional[float] = None,
                  shard_retries: int = 2, backoff_base: float = 0.05,
                  log=None, events_out: Optional[str] = None,
                  bus: Optional[EventBus] = None, stop=None,
                  context: Optional[TraceContext] = None,
                  quarantine: bool = False, chaos=None
                  ) -> Tuple["FuzzStats", PlanResult]:
    """Execute a fuzz plan; returns the merged
    :class:`~repro.fuzz.driver.FuzzStats` plus the pool's
    :class:`~repro.par.pool.PlanResult`."""
    outcome = execute_plan(
        plan, jobs=jobs, checkpoint_dir=checkpoint_dir,
        shard_timeout=shard_timeout, shard_retries=shard_retries,
        backoff_base=backoff_base, log=log, events_out=events_out,
        bus=bus, stop=stop, context=context,
        quarantine=quarantine, chaos=chaos)
    stats = merge_fuzz_stats(outcome.ordered_results(plan),
                             seed=plan.seed,
                             configs=plan.params["configs"],
                             temporal=plan.params.get("temporal",
                                                      "off"))
    stats.elapsed = outcome.wall_seconds
    return stats, outcome


# ---------------------------------------------------------------------------
# resil
# ---------------------------------------------------------------------------

def plan_resil(*, workloads: Sequence[str], schemes: Sequence[str],
               faults: Sequence[str], seed: int = 0, scale: int = 1,
               timeout_seconds: Optional[float] = 120.0,
               strict: bool = False, jobs: int = 1,
               shard_size: int = 0, engine: str = "auto") -> ShardPlan:
    """Plan a resilience campaign as contiguous slices of the global
    cell order (:func:`repro.resil.matrix.enumerate_cells`)."""
    total = len(workloads) * len(schemes) * len(faults)
    params = {
        "workloads": list(workloads), "schemes": list(schemes),
        "faults": list(faults), "seed": seed, "scale": scale,
        "timeout_seconds": timeout_seconds, "strict": strict,
        "engine": engine,
    }
    shards = default_shard_count(total, jobs, shard_size)
    return plan_indices("resil", seed, list(range(total)),
                        params=params, shards=shards)


def parallel_resil(plan: ShardPlan, *, jobs: int,
                   checkpoint_dir: Optional[str] = None,
                   shard_timeout: Optional[float] = None,
                   shard_retries: int = 2, backoff_base: float = 0.05,
                   log=None, events_out: Optional[str] = None,
                   bus: Optional[EventBus] = None, stop=None,
                   context: Optional[TraceContext] = None,
                   quarantine: bool = False, chaos=None
                   ) -> Tuple["CampaignResult", PlanResult]:
    """Execute a resil plan; returns the merged
    :class:`~repro.resil.matrix.CampaignResult` plus the pool
    result."""
    from repro.resil.policy import DEFAULT_POLICY, STRICT_POLICY
    outcome = execute_plan(
        plan, jobs=jobs, checkpoint_dir=checkpoint_dir,
        shard_timeout=shard_timeout, shard_retries=shard_retries,
        backoff_base=backoff_base, log=log, events_out=events_out,
        bus=bus, stop=stop, context=context,
        quarantine=quarantine, chaos=chaos)
    policy = STRICT_POLICY if plan.params["strict"] else DEFAULT_POLICY
    campaign = merge_campaign(
        outcome.ordered_results(plan), seed=plan.seed,
        policy_name=policy.name, workloads=plan.params["workloads"],
        schemes=plan.params["schemes"], faults=plan.params["faults"])
    return campaign, outcome


# ---------------------------------------------------------------------------
# juliet
# ---------------------------------------------------------------------------

def plan_juliet(*, seed: int = 0, allocator: str = "wrapped",
                jobs: int = 1, shard_size: int = 0,
                temporal: str = "off") -> ShardPlan:
    """Plan the Juliet-style suite as contiguous case-index slices.

    With ``temporal`` armed the case list additionally includes the
    CWE-415/CWE-416 lifetime families
    (:func:`repro.juliet.cases.generate_temporal_cases`) and every
    machine runs with the lock-and-key policy; the parameter is only
    recorded in the plan when non-default, so fingerprints of
    pre-temporal manifests keep verifying.
    """
    from repro.juliet.cases import generate_cases, generate_temporal_cases
    total = len(generate_cases())
    if temporal != "off":
        total += len(generate_temporal_cases())
    params = {"allocator": allocator}
    if temporal != "off":
        params["temporal"] = temporal
    shards = default_shard_count(total, jobs, shard_size)
    return plan_indices("juliet", seed, list(range(total)),
                        params=params, shards=shards)


def parallel_juliet(plan: ShardPlan, *, jobs: int,
                    checkpoint_dir: Optional[str] = None,
                    shard_timeout: Optional[float] = None,
                    shard_retries: int = 2, backoff_base: float = 0.05,
                    log=None, events_out: Optional[str] = None,
                    bus: Optional[EventBus] = None, stop=None,
                    context: Optional[TraceContext] = None,
                    quarantine: bool = False, chaos=None
                    ) -> Tuple["JulietReport", PlanResult]:
    outcome = execute_plan(
        plan, jobs=jobs, checkpoint_dir=checkpoint_dir,
        shard_timeout=shard_timeout, shard_retries=shard_retries,
        backoff_base=backoff_base, log=log, events_out=events_out,
        bus=bus, stop=stop, context=context,
        quarantine=quarantine, chaos=chaos)
    return merge_juliet(outcome.ordered_results(plan),
                        temporal=plan.params.get("temporal", "off")), \
        outcome


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------

def plan_bench(*, workloads: Sequence[str], configs: Sequence[str],
               scale: int = 1, timeout_seconds: Optional[float] = None,
               seed: int = 0, jobs: int = 1,
               shard_size: int = 0, engine: str = "auto") -> ShardPlan:
    """Plan an ad-hoc ``(workload, config)`` sweep as contiguous slices
    of :func:`repro.par.campaigns.bench_cells` order."""
    total = len(bench_cells(tuple(workloads), tuple(configs)))
    params = {
        "workloads": list(workloads), "configs": list(configs),
        "scale": scale, "timeout_seconds": timeout_seconds,
        "engine": engine,
    }
    shards = default_shard_count(total, jobs, shard_size)
    return plan_indices("bench", seed, list(range(total)),
                        params=params, shards=shards)


def parallel_bench(plan: ShardPlan, *, jobs: int,
                   checkpoint_dir: Optional[str] = None,
                   shard_timeout: Optional[float] = None,
                   shard_retries: int = 2, backoff_base: float = 0.05,
                   log=None, events_out: Optional[str] = None,
                   bus: Optional[EventBus] = None, stop=None,
                   context: Optional[TraceContext] = None,
                   quarantine: bool = False, chaos=None
                   ) -> Tuple[Dict[str, Any], PlanResult]:
    outcome = execute_plan(
        plan, jobs=jobs, checkpoint_dir=checkpoint_dir,
        shard_timeout=shard_timeout, shard_retries=shard_retries,
        backoff_base=backoff_base, log=log, events_out=events_out,
        bus=bus, stop=stop, context=context,
        quarantine=quarantine, chaos=chaos)
    return merge_bench(outcome.ordered_results(plan)), outcome


# ---------------------------------------------------------------------------
# selftest (deterministic toy campaign; used by tests and the service
# latency benchmark)
# ---------------------------------------------------------------------------

def parallel_selftest(plan: ShardPlan, *, jobs: int,
                      checkpoint_dir: Optional[str] = None,
                      shard_timeout: Optional[float] = None,
                      shard_retries: int = 2, backoff_base: float = 0.05,
                      log=None, events_out: Optional[str] = None,
                      bus: Optional[EventBus] = None, stop=None,
                      context: Optional[TraceContext] = None,
                      quarantine: bool = False, chaos=None
                      ) -> Tuple[List[Optional[Dict[str, Any]]],
                                 PlanResult]:
    """Execute a selftest plan; the 'merged' result is simply the
    shard payloads in shard order."""
    outcome = execute_plan(
        plan, jobs=jobs, checkpoint_dir=checkpoint_dir,
        shard_timeout=shard_timeout, shard_retries=shard_retries,
        backoff_base=backoff_base, log=log, events_out=events_out,
        bus=bus, stop=stop, context=context,
        quarantine=quarantine, chaos=chaos)
    return outcome.ordered_results(plan), outcome


#: kind -> (merge-and-render helper) used by ``python -m repro.par
#: resume`` and the campaign service to finish any campaign generically
_PARALLEL_BY_KIND = {
    "fuzz": parallel_fuzz,
    "resil": parallel_resil,
    "juliet": parallel_juliet,
    "bench": parallel_bench,
    "selftest": parallel_selftest,
}


def run_campaign_plan(plan: ShardPlan, *, jobs: int = 1,
                      checkpoint_dir: Optional[str] = None,
                      shard_timeout: Optional[float] = None,
                      shard_retries: int = 2,
                      backoff_base: float = 0.05, log=None,
                      events_out: Optional[str] = None,
                      bus: Optional[EventBus] = None, stop=None,
                      context: Optional[TraceContext] = None,
                      quarantine: bool = False, chaos=None
                      ) -> Tuple[Any, PlanResult]:
    """Execute-and-merge any campaign plan by kind.

    The generic entry point the campaign service (:mod:`repro.serve`)
    drives: the merged result's type depends on ``plan.kind`` exactly
    as in the per-kind ``parallel_*`` helpers.
    """
    runner = _PARALLEL_BY_KIND.get(plan.kind)
    if runner is None:
        raise ValueError(f"cannot execute campaign kind {plan.kind!r}")
    return runner(plan, jobs=jobs, checkpoint_dir=checkpoint_dir,
                  shard_timeout=shard_timeout,
                  shard_retries=shard_retries,
                  backoff_base=backoff_base, log=log,
                  events_out=events_out, bus=bus, stop=stop,
                  context=context, quarantine=quarantine, chaos=chaos)


def resume_checkpoint(checkpoint_dir: str, *, jobs: int,
                      shard_timeout: Optional[float] = None,
                      shard_retries: int = 2,
                      backoff_base: float = 0.05, log=None,
                      bus: Optional[EventBus] = None, stop=None,
                      context: Optional[TraceContext] = None,
                      quarantine: bool = False, chaos=None
                      ) -> Tuple[str, Any, PlanResult]:
    """Resume any checkpointed campaign from its manifest.

    Returns ``(kind, merged_result, plan_result)`` where the merged
    result's type depends on the campaign kind.  Completed shards are
    restored from disk; pending/failed ones re-run.
    """
    checkpoint = Checkpoint(checkpoint_dir)
    if not checkpoint.exists():
        raise FileNotFoundError(
            f"no checkpoint manifest in {checkpoint_dir}")
    plan = checkpoint.load_plan()
    merged, outcome = run_campaign_plan(
        plan, jobs=jobs, checkpoint_dir=checkpoint_dir,
        shard_timeout=shard_timeout, shard_retries=shard_retries,
        backoff_base=backoff_base, log=log, bus=bus, stop=stop,
        context=context, quarantine=quarantine, chaos=chaos)
    return plan.kind, merged, outcome
