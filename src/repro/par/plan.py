"""Shard plans: the deterministic unit of parallel campaign execution.

A :class:`ShardPlan` splits one campaign — fuzz iterations, resilience
matrix cells, Juliet cases, bench configurations — into independent
:class:`ShardSpec` work units.  Three properties make the split safe to
parallelize:

* **Pure-function shards.**  Every shard carries everything its runner
  needs (campaign kind, parameters, item indices, a derived seed
  namespace), so a shard's result is a pure function of its spec —
  independent of which worker runs it, when, or how often.
* **Order-preserving items.**  Items are split into *contiguous* chunks
  in campaign order.  Merging shard results in ``shard_id`` order then
  reproduces the exact sequential ordering, which is what makes the
  merged output byte-identical to a one-process run.
* **Stable fingerprint.**  :meth:`ShardPlan.fingerprint` hashes the
  canonical JSON form of the plan; the checkpoint manifest stores it so
  a resume can refuse to mix shards from two different campaigns.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.par.seeds import shard_seed

#: campaign kinds with registered shard runners (repro.par.campaigns)
PLAN_KINDS: Tuple[str, ...] = (
    "fuzz", "resil", "juliet", "bench", "selftest",
)


def split_evenly(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous ``(start, count)``
    chunks whose sizes differ by at most one (larger chunks first, like
    ``numpy.array_split``)."""
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    parts = min(parts, total) or 1
    base, extra = divmod(total, parts)
    chunks: List[Tuple[int, int]] = []
    start = 0
    for index in range(parts):
        count = base + (1 if index < extra else 0)
        if count == 0:
            continue
        chunks.append((start, count))
        start += count
    return chunks


@dataclass
class ShardSpec:
    """One independent unit of campaign work.

    ``items`` is kind-specific but always JSON-scalar content: a
    ``(start, count)`` iteration range for fuzz, a list of global cell
    indices for the resilience matrix, case indices for Juliet.
    ``params`` is the full parameter set the runner needs — shards are
    self-contained so a worker (or a resumed session) never needs
    campaign state from anywhere else.
    """

    shard_id: int
    kind: str
    seed: int
    items: List[Any]
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard_id": self.shard_id, "kind": self.kind,
            "seed": self.seed, "items": list(self.items),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardSpec":
        return cls(shard_id=data["shard_id"], kind=data["kind"],
                   seed=data["seed"], items=list(data["items"]),
                   params=dict(data["params"]))


@dataclass
class ShardPlan:
    """A campaign split into shards, plus the campaign-level identity."""

    kind: str
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)
    shards: List[ShardSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in PLAN_KINDS:
            raise ValueError(f"unknown plan kind {self.kind!r}; "
                             f"expected one of {PLAN_KINDS}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "seed": self.seed,
            "params": dict(self.params),
            "shards": [shard.to_dict() for shard in self.shards],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardPlan":
        return cls(kind=data["kind"], seed=data["seed"],
                   params=dict(data["params"]),
                   shards=[ShardSpec.from_dict(s)
                           for s in data["shards"]])

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form — the campaign identity
        a checkpoint manifest verifies before resuming."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def default_shard_count(total_items: int, jobs: int,
                        shard_size: int = 0) -> int:
    """How many shards to plan: enough for the pool to steal work
    (4 per worker) without shattering tiny campaigns."""
    if shard_size > 0:
        return max(1, -(-total_items // shard_size))
    return max(1, min(total_items, jobs * 4))


def plan_range(kind: str, seed: int, total: int, *,
               params: Dict[str, Any], shards: int,
               shard_params: Sequence[Dict[str, Any]] = ()) -> ShardPlan:
    """Plan a campaign over ``range(total)`` as contiguous
    ``(start, count)`` shards.  ``shard_params[i]`` (when given)
    overlays shard *i*'s params on top of the campaign params."""
    plan = ShardPlan(kind=kind, seed=seed, params=dict(params))
    for shard_id, (start, count) in enumerate(split_evenly(total,
                                                           shards)):
        merged = dict(params)
        if shard_id < len(shard_params):
            merged.update(shard_params[shard_id])
        plan.shards.append(ShardSpec(
            shard_id=shard_id, kind=kind,
            seed=shard_seed(seed, shard_id),
            items=[start, count], params=merged))
    return plan


def plan_indices(kind: str, seed: int, indices: Sequence[int], *,
                 params: Dict[str, Any], shards: int) -> ShardPlan:
    """Plan a campaign over an explicit index list (e.g. resilience
    matrix cells) as contiguous slices of that list."""
    plan = ShardPlan(kind=kind, seed=seed, params=dict(params))
    for shard_id, (start, count) in enumerate(
            split_evenly(len(indices), shards)):
        plan.shards.append(ShardSpec(
            shard_id=shard_id, kind=kind,
            seed=shard_seed(seed, shard_id),
            items=list(indices[start:start + count]),
            params=dict(params)))
    return plan
