"""Resumable on-disk checkpointing for sharded campaigns.

A checkpoint directory holds:

* ``manifest.json`` — the full :class:`~repro.par.plan.ShardPlan`, its
  fingerprint, and the per-shard status table
  (``pending`` → ``running`` → ``done`` | ``failed``);
* ``shard-<id>.json`` — one result document per completed shard;
* ``events.jsonl`` — the pool's shard/steal event stream (written by
  the engine when events are enabled; consumed by
  ``python -m repro.obs report --par-events``).

The manifest is rewritten atomically (temp file + ``os.replace``) after
every state change, so a campaign killed at any instant resumes from
the last completed shard.  A resume validates the plan fingerprint:
shards from two different campaigns can never be mixed, and a plan
whose parameters changed (different seed, configs, budgets, …) is a
*different campaign* by construction.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Set

from repro.errors import ReproError
from repro.par.plan import ShardPlan

MANIFEST_SCHEMA = "repro.par.checkpoint/v1"
MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"


class CheckpointMismatch(ReproError, ValueError):
    """The manifest on disk belongs to a different campaign plan.

    Derives from :class:`ReproError` so it picks up ``to_dict`` /
    ``from_dict`` and crosses the campaign-service API boundary typed;
    it stays a :class:`ValueError` for existing callers.
    """


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


class Checkpoint:
    """Manifest + per-shard result files under one directory."""

    def __init__(self, directory: str):
        self.directory = directory
        self.manifest_path = os.path.join(directory, MANIFEST_NAME)
        self.events_path = os.path.join(directory, EVENTS_NAME)
        self._manifest: Optional[Dict[str, Any]] = None

    # -- lifecycle ----------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.manifest_path)

    def open(self, plan: ShardPlan) -> Set[int]:
        """Bind this checkpoint to ``plan``; returns the set of shard
        ids already completed (to be restored instead of re-run).

        A fresh directory gets a new manifest; an existing manifest is
        validated against the plan fingerprint and its ``done`` shards
        are returned.  ``running``/``failed`` shards from an interrupted
        or partially-failed run are demoted to ``pending`` so the pool
        re-executes them.
        """
        os.makedirs(self.directory, exist_ok=True)
        fingerprint = plan.fingerprint()
        if self.exists():
            manifest = self._load()
            if manifest.get("fingerprint") != fingerprint:
                raise CheckpointMismatch(
                    f"{self.manifest_path}: manifest fingerprint "
                    f"{manifest.get('fingerprint')!r} does not match "
                    f"this campaign ({fingerprint}); refusing to mix "
                    f"shards from different campaigns")
            completed: Set[int] = set()
            for key, row in manifest["shards"].items():
                # A 'done' row only counts if its result file survived
                # intact: a kill can land between the manifest flush
                # and the (atomic) result write, or leave a stale
                # ``.tmp`` behind — a partially written or missing
                # result demotes the shard to pending and it re-runs.
                if row["status"] == "done" \
                        and self._result_intact(int(key)):
                    completed.add(int(key))
                else:
                    row["status"] = "pending"
                    row["result"] = None
                    row["error"] = None
            self._manifest = manifest
            self._flush()
            return completed
        self._manifest = {
            "schema": MANIFEST_SCHEMA,
            "fingerprint": fingerprint,
            "plan": plan.to_dict(),
            "shards": {
                str(shard.shard_id): {
                    "status": "pending", "attempts": 0,
                    "result": None, "error": None,
                }
                for shard in plan.shards
            },
        }
        self._flush()
        return set()

    def load_plan(self) -> ShardPlan:
        """Reconstruct the campaign plan from the manifest (used by
        ``python -m repro.par resume``)."""
        return ShardPlan.from_dict(self._load()["plan"])

    # -- state transitions --------------------------------------------------

    def mark_running(self, shard_id: int, attempt: int) -> None:
        row = self._row(shard_id)
        row["status"] = "running"
        row["attempts"] = attempt + 1
        self._flush()

    def record_result(self, shard_id: int, attempts: int,
                      result: Dict[str, Any]) -> str:
        """Persist one shard result and mark the shard done."""
        path = self.result_path(shard_id)
        _atomic_write_json(path, {
            "schema": "repro.par.shard_result/v1",
            "shard_id": shard_id, "attempts": attempts,
            "result": result,
        })
        row = self._row(shard_id)
        row["status"] = "done"
        row["attempts"] = attempts
        row["result"] = os.path.basename(path)
        row["error"] = None
        self._flush()
        return path

    def record_failure(self, shard_id: int, attempts: int,
                       reason: str, detail: str) -> None:
        row = self._row(shard_id)
        row["status"] = "failed"
        row["attempts"] = attempts
        row["error"] = {"reason": reason, "detail": detail}
        self._flush()

    # -- reads --------------------------------------------------------------

    def _result_intact(self, shard_id: int) -> bool:
        """True when the shard's result document exists, parses, and
        identifies itself as this shard's result."""
        try:
            with open(self.result_path(shard_id)) as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return False
        return (isinstance(document, dict)
                and document.get("shard_id") == shard_id
                and "result" in document)

    def result_path(self, shard_id: int) -> str:
        return os.path.join(self.directory, f"shard-{shard_id:04d}.json")

    def load_result(self, shard_id: int) -> Dict[str, Any]:
        with open(self.result_path(shard_id)) as handle:
            document = json.load(handle)
        if document.get("shard_id") != shard_id:
            raise ValueError(
                f"{self.result_path(shard_id)}: shard_id "
                f"{document.get('shard_id')!r} != {shard_id}")
        return document["result"]

    def statuses(self) -> Dict[int, str]:
        return {int(key): row["status"]
                for key, row in self._load()["shards"].items()}

    def failures(self) -> List[Dict[str, Any]]:
        return [
            {"shard_id": int(key), "attempts": row["attempts"],
             **row["error"]}
            for key, row in self._load()["shards"].items()
            if row["status"] == "failed" and row["error"]]

    # -- plumbing -----------------------------------------------------------

    def _row(self, shard_id: int) -> Dict[str, Any]:
        manifest = self._load()
        try:
            return manifest["shards"][str(shard_id)]
        except KeyError:
            raise KeyError(f"shard {shard_id} not in manifest "
                           f"{self.manifest_path}") from None

    def _load(self) -> Dict[str, Any]:
        if self._manifest is None:
            with open(self.manifest_path) as handle:
                manifest = json.load(handle)
            if manifest.get("schema") != MANIFEST_SCHEMA:
                raise ValueError(
                    f"{self.manifest_path}: unknown schema "
                    f"{manifest.get('schema')!r}")
            self._manifest = manifest
        return self._manifest

    def _flush(self) -> None:
        assert self._manifest is not None
        _atomic_write_json(self.manifest_path, self._manifest)
