"""Resumable on-disk checkpointing for sharded campaigns.

A checkpoint directory holds:

* ``manifest.json`` — the full :class:`~repro.par.plan.ShardPlan`, its
  fingerprint, and the per-shard status table
  (``pending`` → ``running`` → ``done`` | ``failed`` |
  ``quarantined``);
* ``shard-<id>.json`` — one result document per completed shard,
  carrying a CRC32 of its payload so corruption demotes the shard to
  pending instead of merging silently;
* ``quarantine-<id>.json`` — the dead-letter record of a poison shard
  that exhausted its retry budget under a quarantining pool;
* ``events.jsonl`` — the pool's shard/steal event stream (written by
  the engine when events are enabled; consumed by
  ``python -m repro.obs report --par-events``).

Every JSON file is written through
:func:`repro.hostio.atomic_write_json` (temp file + ``os.replace``),
so a campaign killed at any instant resumes from the last completed
shard; opening a checkpoint first sweeps the ``.tmp`` debris such a
kill can leave behind.  A resume validates the plan fingerprint:
shards from two different campaigns can never be mixed, and a plan
whose parameters changed (different seed, configs, budgets, …) is a
*different campaign* by construction.

Integrity: shard result documents are schema
``repro.par.shard_result/v2`` — their ``crc32`` field covers the
canonical JSON of the payload, and both :meth:`Checkpoint.open` and
:meth:`Checkpoint.load_result` verify it.  A bit-flipped result file
(the ``corrupt_result`` chaos fault, a dying disk) therefore re-runs
its shard rather than poisoning the merge.  Legacy ``/v1`` documents
(no checksum) are still accepted.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Set

from repro.errors import ReproError
from repro.hostio import atomic_write_json, crc32_of_json, sweep_stale_tmp
from repro.par.plan import ShardPlan

MANIFEST_SCHEMA = "repro.par.checkpoint/v1"
MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"

RESULT_SCHEMA = "repro.par.shard_result/v2"
RESULT_SCHEMA_V1 = "repro.par.shard_result/v1"
QUARANTINE_SCHEMA = "repro.par.quarantine/v1"


class CheckpointMismatch(ReproError, ValueError):
    """The manifest on disk belongs to a different campaign plan.

    Derives from :class:`ReproError` so it picks up ``to_dict`` /
    ``from_dict`` and crosses the campaign-service API boundary typed;
    it stays a :class:`ValueError` for existing callers.
    """


class Checkpoint:
    """Manifest + per-shard result files under one directory."""

    def __init__(self, directory: str):
        self.directory = directory
        self.manifest_path = os.path.join(directory, MANIFEST_NAME)
        self.events_path = os.path.join(directory, EVENTS_NAME)
        self._manifest: Optional[Dict[str, Any]] = None

    # -- lifecycle ----------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.manifest_path)

    def open(self, plan: ShardPlan) -> Set[int]:
        """Bind this checkpoint to ``plan``; returns the set of shard
        ids already completed (to be restored instead of re-run).

        A fresh directory gets a new manifest; an existing manifest is
        validated against the plan fingerprint and its ``done`` shards
        are returned.  ``running``/``failed`` shards from an interrupted
        or partially-failed run are demoted to ``pending`` so the pool
        re-executes them; ``quarantined`` shards stay quarantined — a
        dead-lettered poison shard is a recorded verdict, not pending
        work.  Stale ``.tmp`` files from interrupted atomic writes are
        swept first, so crash debris can never be mistaken for live
        state.
        """
        sweep_stale_tmp(self.directory)
        os.makedirs(self.directory, exist_ok=True)
        fingerprint = plan.fingerprint()
        if self.exists():
            manifest = self._load()
            if manifest.get("fingerprint") != fingerprint:
                raise CheckpointMismatch(
                    f"{self.manifest_path}: manifest fingerprint "
                    f"{manifest.get('fingerprint')!r} does not match "
                    f"this campaign ({fingerprint}); refusing to mix "
                    f"shards from different campaigns")
            completed: Set[int] = set()
            for key, row in manifest["shards"].items():
                # A 'done' row only counts if its result file survived
                # intact: a kill can land between the manifest flush
                # and the (atomic) result write, or leave a stale
                # ``.tmp`` behind, or the file can rot on disk — a
                # partially written, missing, or checksum-failing
                # result demotes the shard to pending and it re-runs.
                if row["status"] == "done" \
                        and self._result_intact(int(key)):
                    completed.add(int(key))
                elif row["status"] == "quarantined":
                    continue
                else:
                    row["status"] = "pending"
                    row["result"] = None
                    row["error"] = None
            self._manifest = manifest
            self._flush()
            return completed
        self._manifest = {
            "schema": MANIFEST_SCHEMA,
            "fingerprint": fingerprint,
            "plan": plan.to_dict(),
            "shards": {
                str(shard.shard_id): {
                    "status": "pending", "attempts": 0,
                    "result": None, "error": None,
                }
                for shard in plan.shards
            },
        }
        self._flush()
        return set()

    def load_plan(self) -> ShardPlan:
        """Reconstruct the campaign plan from the manifest (used by
        ``python -m repro.par resume``)."""
        return ShardPlan.from_dict(self._load()["plan"])

    # -- state transitions --------------------------------------------------

    def mark_running(self, shard_id: int, attempt: int) -> None:
        row = self._row(shard_id)
        row["status"] = "running"
        row["attempts"] = attempt + 1
        self._flush()

    def record_result(self, shard_id: int, attempts: int,
                      result: Dict[str, Any]) -> str:
        """Persist one shard result and mark the shard done."""
        path = self.result_path(shard_id)
        atomic_write_json(path, {
            "schema": RESULT_SCHEMA,
            "shard_id": shard_id, "attempts": attempts,
            "crc32": crc32_of_json(result),
            "result": result,
        }, op="shard_result")
        row = self._row(shard_id)
        row["status"] = "done"
        row["attempts"] = attempts
        row["result"] = os.path.basename(path)
        row["error"] = None
        self._flush()
        return path

    def record_failure(self, shard_id: int, attempts: int,
                       reason: str, detail: str) -> None:
        row = self._row(shard_id)
        row["status"] = "failed"
        row["attempts"] = attempts
        row["error"] = {"reason": reason, "detail": detail}
        self._flush()

    def record_quarantine(self, shard_id: int, attempts: int,
                          reason: str, detail: str) -> str:
        """Dead-letter one poison shard: persist the quarantine record
        and mark the manifest row ``quarantined`` (terminal — a resume
        does not re-run it)."""
        path = self.quarantine_path(shard_id)
        atomic_write_json(path, {
            "schema": QUARANTINE_SCHEMA,
            "shard_id": shard_id, "attempts": attempts,
            "reason": reason, "detail": detail,
        }, op="quarantine")
        row = self._row(shard_id)
        row["status"] = "quarantined"
        row["attempts"] = attempts
        row["error"] = {"reason": reason, "detail": detail}
        self._flush()
        return path

    # -- reads --------------------------------------------------------------

    def _result_intact(self, shard_id: int) -> bool:
        """True when the shard's result document exists, parses,
        identifies itself as this shard's result, and (schema v2)
        passes its payload checksum."""
        try:
            with open(self.result_path(shard_id)) as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return False
        if not (isinstance(document, dict)
                and document.get("shard_id") == shard_id
                and "result" in document):
            return False
        if document.get("schema") == RESULT_SCHEMA:
            return document.get("crc32") \
                == crc32_of_json(document["result"])
        return True     # legacy /v1 documents carry no checksum

    def result_path(self, shard_id: int) -> str:
        return os.path.join(self.directory, f"shard-{shard_id:04d}.json")

    def quarantine_path(self, shard_id: int) -> str:
        return os.path.join(self.directory,
                            f"quarantine-{shard_id:04d}.json")

    def load_result(self, shard_id: int) -> Dict[str, Any]:
        with open(self.result_path(shard_id)) as handle:
            document = json.load(handle)
        if document.get("shard_id") != shard_id:
            raise ValueError(
                f"{self.result_path(shard_id)}: shard_id "
                f"{document.get('shard_id')!r} != {shard_id}")
        if document.get("schema") == RESULT_SCHEMA \
                and document.get("crc32") \
                != crc32_of_json(document["result"]):
            raise ValueError(
                f"{self.result_path(shard_id)}: payload checksum "
                f"mismatch (corrupt shard result)")
        return document["result"]

    def statuses(self) -> Dict[int, str]:
        return {int(key): row["status"]
                for key, row in self._load()["shards"].items()}

    def failures(self) -> List[Dict[str, Any]]:
        return [
            {"shard_id": int(key), "attempts": row["attempts"],
             **row["error"]}
            for key, row in self._load()["shards"].items()
            if row["status"] == "failed" and row["error"]]

    def quarantined(self) -> List[Dict[str, Any]]:
        """Dead-lettered shards, from the manifest rows (the
        ``quarantine-<id>.json`` files carry the same content)."""
        return [
            {"shard_id": int(key), "attempts": row["attempts"],
             **(row["error"] or {})}
            for key, row in self._load()["shards"].items()
            if row["status"] == "quarantined"]

    # -- plumbing -----------------------------------------------------------

    def _row(self, shard_id: int) -> Dict[str, Any]:
        manifest = self._load()
        try:
            return manifest["shards"][str(shard_id)]
        except KeyError:
            raise KeyError(f"shard {shard_id} not in manifest "
                           f"{self.manifest_path}") from None

    def _load(self) -> Dict[str, Any]:
        if self._manifest is None:
            with open(self.manifest_path) as handle:
                manifest = json.load(handle)
            if manifest.get("schema") != MANIFEST_SCHEMA:
                raise ValueError(
                    f"{self.manifest_path}: unknown schema "
                    f"{manifest.get('schema')!r}")
            self._manifest = manifest
        return self._manifest

    def _flush(self) -> None:
        assert self._manifest is not None
        atomic_write_json(self.manifest_path, self._manifest,
                          op="manifest")
