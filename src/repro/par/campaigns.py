"""Shard runners: the worker-side half of every campaign kind.

Each runner is a module-level function ``runner(shard_dict, attempt)``
→ JSON-able dict, referenced by ``"module:function"`` string so worker
processes import it fresh (fork *and* spawn safe).  Runners must be
pure functions of the shard spec: the merge layer's byte-identical
guarantee assumes re-running a shard (crash recovery, checkpoint
resume) reproduces the same payload.  The ``attempt`` argument exists
for runners with *internal* non-determinism to reseed — the production
campaign runners deliberately ignore it (see
:mod:`repro.par.pool`); only the ``selftest`` runner uses it, to model
flaky work in the crash-recovery tests.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Tuple

from repro.par.seeds import derive_seed, splitmix64

#: campaign kind -> worker-importable runner reference
SHARD_RUNNERS: Dict[str, str] = {
    "fuzz": "repro.par.campaigns:run_fuzz_shard",
    "resil": "repro.par.campaigns:run_resil_shard",
    "juliet": "repro.par.campaigns:run_juliet_shard",
    "bench": "repro.par.campaigns:run_bench_shard",
    "selftest": "repro.par.campaigns:run_selftest_shard",
}


def runner_for(kind: str) -> str:
    try:
        return SHARD_RUNNERS[kind]
    except KeyError:
        raise ValueError(f"no shard runner for campaign kind {kind!r}; "
                         f"expected one of "
                         f"{tuple(SHARD_RUNNERS)}") from None


# ---------------------------------------------------------------------------
# fuzz: a contiguous range of fuzzing iterations
# ---------------------------------------------------------------------------

def run_fuzz_shard(shard: Dict[str, Any], attempt: int
                   ) -> Dict[str, Any]:
    """Run iterations ``[start, start + count)`` of a fuzzing campaign.

    All seed derivation is *global* — the program of iteration *i* is a
    pure function of ``(campaign seed, i)`` — so the shard simply runs
    the existing sequential driver over its slice.  ``plant_bug`` is
    pre-resolved by the planner: only the shard containing the
    campaign's first iteration plants, matching the sequential driver's
    "first iteration only" rule.
    """
    del attempt     # determinism: a re-run must reproduce byte-for-byte
    from repro.fuzz.driver import run_fuzz

    params = shard["params"]
    start, count = shard["items"]
    stats = run_fuzz(
        count, seed=params["seed"], configs=params["configs"],
        start=start, clean=params["clean"], inject=params["inject"],
        corpus_dir=params["corpus_dir"], minimize=params["minimize"],
        max_attacks_per_program=params["max_attacks"],
        plant_bug=params["plant_bug"],
        log=lambda message: None, progress_every=0,
        timeout_seconds=params["timeout_seconds"],
        retries=params["retries"],
        backoff_base=params["backoff_base"],
        engine=params.get("engine", "auto"),
        trace=shard.get("trace"),
        # absent from plans built before the temporal policy existed
        temporal=params.get("temporal", "off"))
    return stats.to_dict()


# ---------------------------------------------------------------------------
# resil: a slice of the fault class x scheme x workload cell order
# ---------------------------------------------------------------------------

def run_resil_shard(shard: Dict[str, Any], attempt: int
                    ) -> Dict[str, Any]:
    """Run the resilience-matrix cells whose *global* indices are in
    ``shard['items']``.

    Cell *i*'s fault seed is ``derive_seed(campaign_seed, i + 1)`` —
    the exact expression of the sequential
    :meth:`~repro.resil.matrix.CampaignRunner.run` loop — so a cell's
    outcome is independent of how the campaign was sharded.
    """
    del attempt
    from repro.resil.matrix import CampaignRunner, enumerate_cells
    from repro.resil.policy import DEFAULT_POLICY, STRICT_POLICY
    from repro.workloads import get as get_workload

    params = shard["params"]
    cells = enumerate_cells(tuple(params["faults"]),
                            tuple(params["schemes"]),
                            tuple(params["workloads"]))
    runner = CampaignRunner(
        scale=params["scale"],
        timeout_seconds=params["timeout_seconds"],
        policy=STRICT_POLICY if params["strict"] else DEFAULT_POLICY,
        engine=params.get("engine", "auto"))
    results = []
    for index in shard["items"]:
        fault, scheme, name = cells[index]
        cell = runner.run_cell(
            get_workload(name), scheme, fault,
            derive_seed(params["seed"], index + 1))
        results.append(cell.to_dict())
    return {"cells": results}


# ---------------------------------------------------------------------------
# juliet: a slice of the generated case list
# ---------------------------------------------------------------------------

def run_juliet_shard(shard: Dict[str, Any], attempt: int
                     ) -> Dict[str, Any]:
    """Run the Juliet-style cases whose indices are in
    ``shard['items']`` under the configured allocator."""
    del attempt
    from repro.compiler import CompilerOptions
    from repro.juliet.cases import generate_cases, generate_temporal_cases
    from repro.juliet.runner import run_case

    params = shard["params"]
    options = CompilerOptions.subheap() \
        if params.get("allocator") == "subheap" \
        else CompilerOptions.wrapped()
    # absent from plans built before the temporal policy existed
    temporal = params.get("temporal", "off")
    cases = generate_cases()
    if temporal != "off":
        cases = cases + generate_temporal_cases()
    results = []
    for index in shard["items"]:
        verdict = run_case(cases[index], options, temporal=temporal)
        results.append({"case_index": index,
                        "trapped": verdict.trapped,
                        "trap": verdict.trap})
    return {"cases": results}


# ---------------------------------------------------------------------------
# bench: a slice of the (workload x config) product
# ---------------------------------------------------------------------------

def bench_cells(workloads: Tuple[str, ...],
                configs: Tuple[str, ...]) -> Tuple[Tuple[str, str], ...]:
    """The bench sweep's cell order (workload outer, config inner)."""
    return tuple((workload, config)
                 for workload in workloads
                 for config in configs)


def run_bench_shard(shard: Dict[str, Any], attempt: int
                    ) -> Dict[str, Any]:
    """Run the ``(workload, config)`` sweep cells whose indices are in
    ``shard['items']``; returns per-cell RunStats metrics keyed
    ``<workload>/<config>``."""
    del attempt
    from repro.eval.harness import run_workload
    from repro.obs.metrics import stats_to_dict
    from repro.workloads import get as get_workload

    params = shard["params"]
    cells = bench_cells(tuple(params["workloads"]),
                        tuple(params["configs"]))
    results: Dict[str, Any] = {}
    for index in shard["items"]:
        workload_name, config = cells[index]
        run = run_workload(get_workload(workload_name), config,
                           scale=params["scale"],
                           timeout_seconds=params["timeout_seconds"],
                           engine=params.get("engine", "auto"))
        results[f"{workload_name}/{config}"] = stats_to_dict(run.stats)
    return {"cells": results}


# ---------------------------------------------------------------------------
# selftest: deterministic work with scriptable failure modes (tests)
# ---------------------------------------------------------------------------

def run_selftest_shard(shard: Dict[str, Any], attempt: int
                       ) -> Dict[str, Any]:
    """Deterministic toy work plus scriptable failure modes.

    ``params['fail_shards']`` selects which shards misbehave, and
    ``params['mode']`` selects how:

    * ``raise`` — raise every attempt (→ typed failure after retries);
    * ``flaky`` — raise on attempts before ``succeed_attempt``;
    * ``crash`` — ``os._exit`` mid-shard (worker death, no traceback);
    * ``hang``  — sleep ``hang_seconds`` (wall-clock budget breach);
    * ``marker`` — raise while ``params['marker']`` exists on disk
      (models a transient environmental failure; lets resume tests
      fail a first run and succeed a second with an identical plan).

    ``params['sleep_seconds']`` (every shard, any mode) slows the work
    down without touching its value — the knob the drain and
    kill-mid-campaign tests use to land a signal between shards.
    """
    params = shard["params"]
    shard_id = shard["shard_id"]
    if params.get("sleep_seconds"):
        time.sleep(params["sleep_seconds"])
    if shard_id in params.get("fail_shards", []):
        mode = params.get("mode", "ok")
        if mode == "raise":
            raise RuntimeError(f"selftest shard {shard_id} raising "
                               f"(attempt {attempt})")
        if mode == "flaky" and attempt < params.get("succeed_attempt", 1):
            raise RuntimeError(f"selftest shard {shard_id} flaky "
                               f"(attempt {attempt})")
        if mode == "crash":
            os._exit(13)
        if mode == "hang":
            time.sleep(params.get("hang_seconds", 60.0))
        if mode == "marker" and os.path.exists(params["marker"]):
            raise RuntimeError(f"selftest shard {shard_id} marker "
                               f"present")
    value = 0
    for item in shard["items"]:
        value ^= splitmix64(shard["seed"] + item)
    return {"shard_id": shard_id, "value": value,
            "items": list(shard["items"]), "attempt": attempt}
