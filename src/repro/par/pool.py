"""The multiprocessing worker pool behind every ``--jobs N`` flag.

Execution model
===============

The parent owns the schedule: it dispatches one shard at a time into
each worker's private task queue, so shard ownership is a parent-side
fact established at dispatch — never inferred from worker messages a
dying process could fail to send.  The plan assigns each shard a
*preferred* worker slot (round-robin, so a perfectly balanced plan
maps onto static assignment), but any idle worker is handed the next
pending shard; when that worker is not the preferred slot the pool
emits a :class:`~repro.obs.events.StealEvent`.  Fast workers therefore
drain slow workers' backlogs automatically.

Crash recovery
==============

Three failure modes mark a shard *failed-retryable*:

* the runner **raises** — the worker reports the exception and stays
  alive;
* the worker **dies** (``os._exit``, segfault, OOM-kill) — detected by
  process liveness polling, and a replacement worker is spawned;
* the shard **exceeds its wall-clock budget** — the parent terminates
  the worker, spawns a replacement, and requeues.

A failed-retryable shard re-enters the queue up to ``retries`` times
with the deterministic exponential backoff shared with
:mod:`repro.resil.retry`, de-synchronized per shard by seeded jitter
(:func:`repro.par.seeds.jittered_backoff` keyed on the shard's derived
seed — fully replayable, never simultaneous).  Backoff is *scheduled*,
not slept: the parent keeps draining other shards while a requeued
shard waits out its delay.  A shard that exhausts its budget is
recorded as a typed :class:`ShardFailure` instead of sinking the
campaign — or, under ``quarantine=True`` (the campaign service's
setting), dead-lettered as a typed :class:`ShardQuarantined` record:
the poison shard is excluded from the merge, the rest of the campaign
completes, and ``PlanResult.ok`` stays true.

Host-fault posture
==================

Checkpoint writes are best-effort under real or injected IO failure
(ENOSPC, EIO): a failed persistence call is counted and logged, the
in-memory result survives, and the campaign completes — the checkpoint
merely goes stale, so a later resume re-runs the affected shard
deterministically.  A ``chaos`` injector
(:class:`repro.resil.chaos.HostFaultInjector`) can additionally kill
workers at seeded dispatch indices; the ordinary crash-recovery path
(respawn + requeue) absorbs those too.

Retries re-execute the *same* shard spec (same seed): a shard's output
must stay a pure function of its spec or the merge layer's
byte-identical guarantee dies.  Seed *derivation* on retry only happens
one level down, inside runners that own a cooperative timeout (the fuzz
driver's per-iteration watchdog) — never at the shard level.
"""

from __future__ import annotations

import importlib
import queue as queue_mod
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import InjectedCrash
from repro.obs.events import (
    ChaosEvent, EventBus, QuarantineEvent, ShardDoneEvent,
    ShardRetryEvent, ShardStartEvent, StealEvent, TraceContext,
)
from repro.par.checkpoint import Checkpoint
from repro.par.plan import ShardPlan, ShardSpec
from repro.par.seeds import jittered_backoff

#: how long the parent blocks on the result queue per scheduling turn
_POLL_SECONDS = 0.05


class ShardRunnerError(RuntimeError):
    """A shard runner reference could not be resolved."""


def install_drain_handler(stop, *, log: Optional[Callable[[str], None]]
                          = None) -> Callable[[], None]:
    """Install SIGTERM/SIGINT handlers that request a graceful drain.

    The first signal sets ``stop`` (any object with ``set()`` /
    ``is_set()``, typically a :class:`threading.Event`): the pool stops
    dispatching new shards, lets in-flight shards finish and
    checkpoint, and returns a :class:`PlanResult` with ``drained``
    set — instead of a ``KeyboardInterrupt`` killing a shard mid-write.
    A second signal falls through to ``KeyboardInterrupt`` for users
    who really mean *now*.

    Returns a zero-argument function restoring the previous handlers.
    Only callable from the main thread (a CPython ``signal``
    restriction); services running pools off-thread wire their own
    signal plumbing to the same ``stop`` event.
    """
    def handler(signum, frame):
        if stop.is_set():
            raise KeyboardInterrupt
        stop.set()
        if log is not None:
            log(f"[repro.par] drain requested "
                f"(signal {signal.Signals(signum).name}): finishing "
                f"in-flight shards and checkpointing; signal again to "
                f"abort immediately")

    previous = {signum: signal.signal(signum, handler)
                for signum in (signal.SIGINT, signal.SIGTERM)}

    def restore() -> None:
        for signum, old in previous.items():
            signal.signal(signum, old)
    return restore


def resolve_runner(runner_ref: str) -> Callable[[Dict[str, Any], int],
                                                Dict[str, Any]]:
    """Resolve a ``"module:function"`` reference to the callable.

    Runners are passed by reference, not by value, so worker processes
    (including ``spawn``-start ones) import them fresh — the only
    pickling a task needs is its JSON-scalar shard dict.
    """
    module_name, _, func_name = runner_ref.partition(":")
    if not module_name or not func_name:
        raise ShardRunnerError(
            f"runner reference {runner_ref!r} is not 'module:function'")
    try:
        module = importlib.import_module(module_name)
        return getattr(module, func_name)
    except (ImportError, AttributeError) as exc:
        raise ShardRunnerError(
            f"cannot resolve runner {runner_ref!r}: {exc}") from exc


@dataclass
class ShardFailure:
    """A shard that exhausted its retry budget — a typed campaign
    result, not an exception: the rest of the campaign still merges."""

    shard_id: int
    reason: str          #: 'error' | 'timeout' | 'crash'
    attempts: int
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"shard_id": self.shard_id, "reason": self.reason,
                "attempts": self.attempts, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardFailure":
        return cls(shard_id=data["shard_id"], reason=data["reason"],
                   attempts=data["attempts"],
                   detail=data.get("detail", ""))


@dataclass
class ShardQuarantined:
    """A poison shard dead-lettered after exhausting its retry budget.

    Like :class:`ShardFailure` a typed campaign record, not an
    exception — but unlike a failure it does not sink the campaign:
    ``PlanResult.ok`` stays true, the merge simply excludes the shard,
    and the quarantine record (persisted as ``quarantine-<id>.json``
    in the checkpoint) survives resume so the poison shard is never
    re-run."""

    shard_id: int
    reason: str          #: 'error' | 'timeout' | 'crash'
    attempts: int
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"shard_id": self.shard_id, "reason": self.reason,
                "attempts": self.attempts, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardQuarantined":
        return cls(shard_id=data["shard_id"], reason=data["reason"],
                   attempts=data["attempts"],
                   detail=data.get("detail", ""))


@dataclass
class WorkerStats:
    """Per-worker-slot utilization accounting."""

    worker: int
    shards_done: int = 0
    steals: int = 0
    busy_seconds: float = 0.0
    respawns: int = 0


@dataclass
class PlanResult:
    """Everything one pool run produced."""

    results: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    failures: List[ShardFailure] = field(default_factory=list)
    #: poison shards dead-lettered under ``quarantine=True`` — typed
    #: verdicts, excluded from the merge, not failures
    quarantined: List[ShardQuarantined] = field(default_factory=list)
    workers: List[WorkerStats] = field(default_factory=list)
    wall_seconds: float = 0.0
    executed: List[int] = field(default_factory=list)
    restored: List[int] = field(default_factory=list)
    retries: int = 0
    steals: int = 0
    #: checkpoint writes that failed on host IO errors (ENOSPC, EIO)
    #: and were degraded to in-memory-only results
    io_errors: int = 0
    #: the run stopped early on a drain request; unfinished shards
    #: stay pending in the checkpoint and re-run on resume
    drained: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def ordered_results(self, plan: ShardPlan
                        ) -> List[Optional[Dict[str, Any]]]:
        """Shard results in ``shard_id`` order (None for failed shards)
        — the input shape the merge layer expects."""
        return [self.results.get(shard.shard_id)
                for shard in plan.shards]

    def utilization_metrics(self) -> Dict[str, Any]:
        """Schema-v1 metrics fragment describing pool efficiency."""
        wall = self.wall_seconds or 1e-9
        return {
            "shards_executed": len(self.executed),
            "shards_restored": len(self.restored),
            "shard_failures": len(self.failures),
            "shards_quarantined": len(self.quarantined),
            "shard_retries": self.retries,
            "steals": self.steals,
            "io_errors": self.io_errors,
            "drained": int(self.drained),
            "wall_seconds": self.wall_seconds,
            "workers": {
                str(w.worker): {
                    "shards_done": w.shards_done,
                    "steals": w.steals,
                    "busy_seconds": w.busy_seconds,
                    "utilization": w.busy_seconds / wall,
                    "respawns": w.respawns,
                }
                for w in self.workers},
        }

    def summary(self) -> str:
        lines = [f"repro.par: {len(self.executed)} shards executed, "
                 f"{len(self.restored)} restored from checkpoint, "
                 f"{self.retries} retries, {self.steals} steals, "
                 f"{len(self.failures)} failed"
                 + (f", {len(self.quarantined)} quarantined"
                    if self.quarantined else "")
                 + (f", {self.io_errors} degraded checkpoint writes"
                    if self.io_errors else "")
                 + f" ({self.wall_seconds:.1f}s)"
                 + (" [drained: remaining shards left pending]"
                    if self.drained else "")]
        wall = self.wall_seconds or 1e-9
        for w in self.workers:
            lines.append(
                f"  worker {w.worker}: {w.shards_done} shards, "
                f"busy {w.busy_seconds:.1f}s "
                f"({100.0 * w.busy_seconds / wall:.0f}%), "
                f"{w.steals} steals"
                + (f", {w.respawns} respawns" if w.respawns else ""))
        for failure in self.failures:
            lines.append(f"  FAILED shard {failure.shard_id} "
                         f"({failure.reason} after {failure.attempts} "
                         f"attempts): {failure.detail}")
        for q in self.quarantined:
            lines.append(f"  QUARANTINED shard {q.shard_id} "
                         f"({q.reason} after {q.attempts} attempts): "
                         f"{q.detail}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _worker_main(worker_id: int, runner_ref: str, task_queue,
                 result_queue) -> None:
    """Worker loop: execute dispatched tasks until the ``None``
    sentinel.

    Scheduling is entirely parent-side: each worker has a private task
    queue the parent dispatches into one shard at a time, so ownership
    is known at dispatch — a worker that dies can never take a claimed
    shard's identity with it (there is no claim message to lose).  A
    runner that raises is reported as an ``error`` message and the
    worker lives on to take the next task.
    """
    runner = resolve_runner(runner_ref)
    while True:
        task = task_queue.get()
        if task is None:
            return
        shard_dict, attempt = task
        shard_id = shard_dict["shard_id"]
        try:
            result = runner(shard_dict, attempt)
        except BaseException as exc:  # noqa: BLE001 — reported, retried
            result_queue.put(("error", shard_id, worker_id, attempt,
                              f"{type(exc).__name__}: {exc}"))
        else:
            result_queue.put(("done", shard_id, worker_id, attempt,
                              result))


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

@dataclass
class _Running:
    shard: ShardSpec
    attempt: int
    worker: int
    started: float


class _Pool:
    """One pool run: parent-side scheduling state."""

    def __init__(self, plan: ShardPlan, runner_ref: str, *, jobs: int,
                 shard_timeout: Optional[float], retries: int,
                 backoff_base: float, checkpoint: Optional[Checkpoint],
                 bus: Optional[EventBus],
                 log: Optional[Callable[[str], None]],
                 stop=None, context: Optional[TraceContext] = None,
                 quarantine: bool = False, chaos=None):
        self.plan = plan
        self.runner_ref = runner_ref
        self.jobs = max(1, jobs)
        self.shard_timeout = shard_timeout
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.checkpoint = checkpoint
        self.bus = bus
        self.log = log or (lambda message: None)
        self.stop = stop
        self.context = context
        self.quarantine = quarantine
        self.chaos = chaos
        self.preferred: Dict[int, int] = {}
        self.result = PlanResult(
            workers=[WorkerStats(worker=i) for i in range(self.jobs)])

    def _stopping(self) -> bool:
        return self.stop is not None and self.stop.is_set()

    # -- events -------------------------------------------------------------

    def _emit(self, event) -> None:
        if self.bus is not None:
            self.bus.emit(event)

    def _ctx(self, shard: ShardSpec) -> Optional[TraceContext]:
        """Shard-level correlation: the job-level context refined with
        this shard's id and derived seed."""
        if self.context is None:
            return None
        return self.context.with_shard(shard.shard_id, shard.seed)

    def _task_dict(self, shard: ShardSpec) -> Dict[str, Any]:
        """The dict handed to the runner.  Correlation rides along as a
        ``trace`` key injected at dispatch time — never stored in the
        plan, so fingerprints and checkpoints stay context-free."""
        task = shard.to_dict()
        ctx = self._ctx(shard)
        if ctx is not None:
            task["trace"] = ctx.to_dict()
        return task

    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _persist(self, action: Callable[[], Any], what: str) -> None:
        """Best-effort checkpoint write.

        A host IO failure (real or injected ENOSPC/EIO) degrades
        persistence, never the campaign: the in-memory result
        survives, the write is counted and logged, and the checkpoint
        merely goes stale — a later resume re-runs the affected shard
        deterministically.  Non-IO failures (a torn-write crash, a
        manifest mismatch) still propagate: those mean the process is
        supposed to die.
        """
        try:
            action()
        except OSError as exc:
            self.result.io_errors += 1
            self.log(f"[repro.par] checkpoint write degraded ({what}): "
                     f"{type(exc).__name__}: {exc}; result kept "
                     f"in memory")

    def _chaos_kill(self, shard: ShardSpec, worker: int) -> bool:
        """Consult the chaos injector at dispatch; emits a
        :class:`ChaosEvent` when the schedule fires."""
        if self.chaos is None:
            return False
        injection = self.chaos.fire(
            "worker_kill", op="dispatch",
            detail=f"shard {shard.shard_id} on worker {worker}")
        if injection is None:
            return False
        self._emit(ChaosEvent(site=None, fault=injection.fault,
                              op=injection.op, index=injection.index,
                              detail=injection.detail,
                              ctx=self._ctx(shard)))
        return True

    # -- shared outcome handling -------------------------------------------

    def _complete(self, shard: ShardSpec, attempt: int, worker: int,
                  seconds: float, payload: Dict[str, Any]) -> None:
        sid = shard.shard_id
        self.result.results[sid] = payload
        self.result.executed.append(sid)
        stats = self.result.workers[worker]
        stats.shards_done += 1
        stats.busy_seconds += seconds
        self._emit(ShardDoneEvent(site=None, shard_id=sid,
                                  worker=worker, attempt=attempt,
                                  t=self._now(), status="ok",
                                  seconds=seconds,
                                  ctx=self._ctx(shard)))
        if self.checkpoint is not None:
            self._persist(
                lambda: self.checkpoint.record_result(
                    sid, attempt + 1, payload),
                f"record_result shard {sid}")

    def _fail(self, shard: ShardSpec, attempt: int, worker: int,
              reason: str, detail: str, seconds: float) -> None:
        """Terminal failure: retries exhausted.  Under
        ``quarantine=True`` the shard is dead-lettered instead — a
        typed :class:`ShardQuarantined` record the campaign carries
        without failing."""
        sid = shard.shard_id
        if worker >= 0:
            self.result.workers[worker].busy_seconds += seconds
        self._emit(ShardDoneEvent(site=None, shard_id=sid,
                                  worker=worker, attempt=attempt,
                                  t=self._now(), status=reason,
                                  seconds=seconds,
                                  ctx=self._ctx(shard)))
        if self.quarantine:
            record = ShardQuarantined(shard_id=sid, reason=reason,
                                      attempts=attempt + 1,
                                      detail=detail)
            self.result.quarantined.append(record)
            self._emit(QuarantineEvent(site=None, shard_id=sid,
                                       attempts=attempt + 1,
                                       reason=reason, t=self._now(),
                                       detail=detail,
                                       ctx=self._ctx(shard)))
            if self.checkpoint is not None:
                self._persist(
                    lambda: self.checkpoint.record_quarantine(
                        sid, attempt + 1, reason, detail),
                    f"record_quarantine shard {sid}")
            self.log(f"[repro.par] shard {sid} QUARANTINED ({reason}) "
                     f"after {attempt + 1} attempts: {detail}")
            return
        failure = ShardFailure(shard_id=sid, reason=reason,
                               attempts=attempt + 1, detail=detail)
        self.result.failures.append(failure)
        if self.checkpoint is not None:
            self._persist(
                lambda: self.checkpoint.record_failure(
                    sid, attempt + 1, reason, detail),
                f"record_failure shard {sid}")
        self.log(f"[repro.par] shard {sid} FAILED ({reason}) after "
                 f"{attempt + 1} attempts: {detail}")

    def _started(self, shard: ShardSpec, attempt: int,
                 worker: int) -> None:
        sid = shard.shard_id
        self._emit(ShardStartEvent(site=None, shard_id=sid,
                                   worker=worker, attempt=attempt,
                                   t=self._now(), ctx=self._ctx(shard)))
        preferred = self.preferred.get(sid, worker)
        if worker != preferred:
            self.result.steals += 1
            self.result.workers[worker].steals += 1
            self._emit(StealEvent(site=None, shard_id=sid,
                                  worker=worker, preferred=preferred,
                                  t=self._now(), ctx=self._ctx(shard)))
        if self.checkpoint is not None:
            self._persist(
                lambda: self.checkpoint.mark_running(sid, attempt),
                f"mark_running shard {sid}")

    # -- inline execution (jobs == 1, no extra processes) -------------------

    def run_inline(self) -> PlanResult:
        """Sequential execution in this process.

        The retry loop and event stream behave exactly like the
        multiprocess path; what an inline run *cannot* provide is
        preemption, so wall-clock budgets rely on the runner's own
        cooperative timeout (e.g. the fuzz driver's watchdog).
        """
        self._t0 = time.monotonic()
        runner = resolve_runner(self.runner_ref)
        todo = self._plan_order()
        for shard in todo:
            if self._stopping():
                self.result.drained = True
                break
            attempt = 0
            while True:
                self._started(shard, attempt, worker=0)
                if self._chaos_kill(shard, worker=0):
                    # Inline pools have no process to kill: the
                    # injected crash aborts the run the way a SIGKILL
                    # would (the shard stays 'running' in the
                    # checkpoint), exercising checkpoint-resume.
                    raise InjectedCrash(
                        f"chaos: worker killed dispatching shard "
                        f"{shard.shard_id}", fault="worker_kill",
                        op="dispatch")
                started = time.monotonic()
                try:
                    payload = runner(self._task_dict(shard), attempt)
                except KeyboardInterrupt:
                    raise
                except BaseException as exc:  # noqa: BLE001
                    seconds = time.monotonic() - started
                    detail = f"{type(exc).__name__}: {exc}"
                    if attempt >= self.retries:
                        self._fail(shard, attempt, 0, "error", detail,
                                   seconds)
                        break
                    delay = jittered_backoff(self.backoff_base,
                                             attempt, shard.seed)
                    self.result.retries += 1
                    self._emit(ShardRetryEvent(
                        site=None, shard_id=shard.shard_id, worker=0,
                        attempt=attempt, t=self._now(), reason="error",
                        delay=delay, ctx=self._ctx(shard)))
                    self.result.workers[0].busy_seconds += seconds
                    if self._stopping():
                        # drain beats backoff: leave the shard pending
                        # for a resume instead of burning retries
                        self.result.drained = True
                        break
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                else:
                    self._complete(shard, attempt, 0,
                                   time.monotonic() - started, payload)
                    break
        self.result.wall_seconds = time.monotonic() - self._t0
        return self.result

    # -- multiprocess execution --------------------------------------------

    def run_processes(self) -> PlanResult:
        """Parent-side scheduling: each worker has a private task queue
        the parent dispatches into one shard at a time.

        Ownership is therefore known at dispatch, never inferred from
        worker messages — a worker that dies (``os._exit``, segfault,
        OOM-kill) cannot silently lose a claimed shard, because there is
        no claim message to lose.  Work stealing falls out of the
        scheduler: an idle worker is handed the next pending shard even
        when its preferred slot is busy.
        """
        import multiprocessing as mp
        method = "fork" if "fork" in mp.get_all_start_methods() \
            else "spawn"
        ctx = mp.get_context(method)
        self._t0 = time.monotonic()

        result_queue = ctx.Queue()
        task_queues: List[Any] = [None] * self.jobs
        workers: List[Any] = [None] * self.jobs

        def spawn(worker_id: int) -> None:
            # A fresh task queue per (re)spawn: a terminated worker may
            # have died holding the old queue's lock.
            task_queues[worker_id] = ctx.Queue()
            process = ctx.Process(
                target=_worker_main,
                args=(worker_id, self.runner_ref,
                      task_queues[worker_id], result_queue),
                daemon=True)
            process.start()
            workers[worker_id] = process

        todo = self._plan_order()
        total = len(todo)
        pending: List[Tuple[ShardSpec, int]] = [(s, 0) for s in todo]
        #: shards waiting out a backoff delay: (ready_time, shard, attempt)
        delayed: List[Tuple[float, ShardSpec, int]] = []
        running: Dict[int, _Running] = {}       # worker_id -> in flight
        idle: List[int] = list(range(self.jobs))
        resolved: Set[int] = set()
        current_attempt: Dict[int, int] = {s.shard_id: 0 for s in todo}

        for worker_id in range(self.jobs):
            spawn(worker_id)

        def dispatch() -> None:
            while pending and idle:
                shard, attempt = pending.pop(0)
                preferred = self.preferred.get(shard.shard_id, idle[0])
                worker = preferred if preferred in idle else idle[0]
                idle.remove(worker)
                current_attempt[shard.shard_id] = attempt
                running[worker] = _Running(
                    shard=shard, attempt=attempt, worker=worker,
                    started=time.monotonic())
                task_queues[worker].put((self._task_dict(shard),
                                         attempt))
                self._started(shard, attempt, worker)
                if self._chaos_kill(shard, worker):
                    # SIGKILL the worker right after dispatch: the
                    # ordinary dead-worker sweep detects it, counts a
                    # crash, respawns the slot, and requeues the
                    # shard — the chaos fault rides the normal
                    # crash-recovery path.
                    workers[worker].kill()

        def retry_or_fail(shard: ShardSpec, attempt: int, worker: int,
                          reason: str, detail: str,
                          seconds: float) -> None:
            if attempt >= self.retries:
                self._fail(shard, attempt, worker, reason, detail,
                           seconds)
                resolved.add(shard.shard_id)
                return
            delay = jittered_backoff(self.backoff_base, attempt,
                                     shard.seed)
            self.result.retries += 1
            # Invalidate in-flight messages from the failed attempt
            # *now* (not at re-dispatch time): a "done" racing with a
            # terminate must not double-complete the shard.
            current_attempt[shard.shard_id] = attempt + 1
            if worker >= 0:
                self.result.workers[worker].busy_seconds += seconds
            self._emit(ShardRetryEvent(
                site=None, shard_id=shard.shard_id, worker=worker,
                attempt=attempt, t=self._now(), reason=reason,
                delay=delay, ctx=self._ctx(shard)))
            self.log(f"[repro.par] shard {shard.shard_id} {reason} "
                     f"(attempt {attempt + 1}); requeued after "
                     f"{delay:.2f}s backoff")
            delayed.append((time.monotonic() + delay, shard,
                            attempt + 1))

        def respawn(worker_id: int) -> None:
            self.result.workers[worker_id].respawns += 1
            spawn(worker_id)
            if worker_id not in idle:
                idle.append(worker_id)

        try:
            while len(resolved) < total:
                # a drain request stops dispatch; in-flight shards run
                # to completion (and checkpoint), then the loop exits
                # with the remainder left pending for a resume
                stopping = self._stopping()
                if stopping and not running:
                    self.result.drained = True
                    break
                if not stopping:
                    # release shards whose backoff elapsed, then hand
                    # work to every idle worker
                    now = time.monotonic()
                    for item in [d for d in delayed if d[0] <= now]:
                        delayed.remove(item)
                        pending.append((item[1], item[2]))
                    dispatch()

                # drain one message
                try:
                    message = result_queue.get(timeout=_POLL_SECONDS)
                except queue_mod.Empty:
                    message = None
                if message is not None:
                    tag, sid, worker, attempt, payload = message
                    run = running.get(worker)
                    live = (run is not None
                            and run.shard.shard_id == sid
                            and run.attempt == attempt
                            and sid not in resolved
                            and attempt == current_attempt.get(sid))
                    # A stale message (from an attempt already timed
                    # out and re-dispatched) must not touch idle
                    # state: its worker was respawned by the handler
                    # that invalidated it.
                    if live:
                        running.pop(worker)
                        idle.append(worker)
                        seconds = time.monotonic() - run.started
                        if tag == "done":
                            self._complete(run.shard, attempt, worker,
                                           seconds, payload)
                            resolved.add(sid)
                        else:   # "error": runner raised, worker lives
                            retry_or_fail(run.shard, attempt, worker,
                                          "error", payload, seconds)

                # enforce wall-clock budgets
                if self.shard_timeout is not None:
                    now = time.monotonic()
                    for worker_id in [
                            w for w, r in running.items()
                            if now - r.started > self.shard_timeout]:
                        run = running.pop(worker_id)
                        process = workers[worker_id]
                        process.terminate()
                        process.join(5.0)
                        if process.is_alive():
                            process.kill()
                            process.join(5.0)
                        retry_or_fail(
                            run.shard, run.attempt, worker_id,
                            "timeout",
                            f"exceeded {self.shard_timeout:g}s shard "
                            f"budget", now - run.started)
                        respawn(worker_id)

                # detect dead workers (crashed mid-shard)
                for worker_id, process in enumerate(workers):
                    if process.is_alive():
                        continue
                    run = running.pop(worker_id, None)
                    if run is not None:
                        retry_or_fail(
                            run.shard, run.attempt, worker_id, "crash",
                            f"worker {worker_id} died "
                            f"(exitcode {process.exitcode})",
                            time.monotonic() - run.started)
                    respawn(worker_id)
        finally:
            for worker_id, process in enumerate(workers):
                try:
                    task_queues[worker_id].put(None)
                except (ValueError, OSError):
                    pass
            for process in workers:
                process.join(2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(2.0)
            for task_queue in task_queues:
                task_queue.close()
            result_queue.close()

        self.result.wall_seconds = time.monotonic() - self._t0
        return self.result

    # -- helpers ------------------------------------------------------------

    def _plan_order(self) -> List[ShardSpec]:
        """Shards still to execute, with round-robin preferred slots.

        Restored results and previously quarantined shards are both
        settled: a dead-lettered poison shard is a recorded verdict a
        resume must not re-run.
        """
        settled = set(self.result.results)
        settled.update(q.shard_id for q in self.result.quarantined)
        todo = [shard for shard in self.plan.shards
                if shard.shard_id not in settled]
        for position, shard in enumerate(todo):
            self.preferred[shard.shard_id] = position % self.jobs
        return todo


def run_plan(plan: ShardPlan, runner_ref: str, *, jobs: int = 1,
             shard_timeout: Optional[float] = None, retries: int = 2,
             backoff_base: float = 0.05,
             checkpoint: Optional[Checkpoint] = None,
             bus: Optional[EventBus] = None,
             log: Optional[Callable[[str], None]] = None,
             stop=None,
             context: Optional[TraceContext] = None,
             quarantine: bool = False, chaos=None) -> PlanResult:
    """Execute ``plan`` with ``jobs`` workers; returns a
    :class:`PlanResult`.

    ``checkpoint`` (when given) is opened against the plan: shards it
    already holds results for are *restored* instead of re-run, and
    every completion/failure is persisted as it happens, so the run can
    be killed and resumed at shard granularity.

    ``quarantine=True`` dead-letters poison shards (retry budget
    exhausted) as :class:`ShardQuarantined` records instead of
    :class:`ShardFailure`: ``PlanResult.ok`` stays true and the merge
    excludes them.  ``chaos`` (a
    :class:`repro.resil.chaos.HostFaultInjector`) arms seeded host
    faults — worker kills at dispatch plus whatever the injector does
    to persistence writes.

    ``stop`` (a :class:`threading.Event` or anything with ``is_set``)
    requests a graceful drain: no new shards are dispatched, in-flight
    shards finish and checkpoint, and the result comes back with
    ``drained=True`` — pair with :func:`install_drain_handler` for
    clean SIGTERM/SIGINT behaviour.

    ``context`` (a :class:`~repro.obs.events.TraceContext`, typically
    minted by :mod:`repro.serve`) makes every shard event carry
    (tenant, job, shard, seed) correlation ids and rides into each
    runner as a dispatch-time ``trace`` key on the shard dict.  It is
    execution-time only: plans, fingerprints, and checkpoints never see
    it, so a correlated run resumes against an uncorrelated
    checkpoint (and vice versa) byte-identically.
    """
    pool = _Pool(plan, runner_ref, jobs=jobs,
                 shard_timeout=shard_timeout, retries=retries,
                 backoff_base=backoff_base, checkpoint=checkpoint,
                 bus=bus, log=log, stop=stop, context=context,
                 quarantine=quarantine, chaos=chaos)
    if checkpoint is not None:
        for shard_id in sorted(checkpoint.open(plan)):
            pool.result.results[shard_id] = \
                checkpoint.load_result(shard_id)
            pool.result.restored.append(shard_id)
        for record in checkpoint.quarantined():
            pool.result.quarantined.append(
                ShardQuarantined.from_dict(record))
    settled = set(pool.result.results)
    settled.update(q.shard_id for q in pool.result.quarantined)
    if all(shard.shard_id in settled for shard in plan.shards):
        pool.result.wall_seconds = 0.0
        return pool.result
    if jobs <= 1:
        return pool.run_inline()
    return pool.run_processes()
