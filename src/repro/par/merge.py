"""Folding per-shard results back into sequential-identical outputs.

The determinism contract: for every campaign kind, merging the shard
results *in shard order* produces the same artifact a one-process run
of the same seed would have produced — same corpus entries, same
resilience cells in the same order, same counters.  The only fields
that can legitimately differ are wall-clock derived (elapsed seconds,
throughput rates, timestamps, per-worker utilization); those are
enumerated in :data:`TIMING_KEYS`/:data:`TIMING_SUFFIXES` and excluded
by :func:`canonical_metrics`, which is what
``python -m repro.par diff`` and the CI determinism gates compare.
"""

from __future__ import annotations

import copy
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence

#: metric/document keys that measure wall-clock, not campaign content
TIMING_KEYS = frozenset({
    "timestamp", "elapsed", "elapsed_seconds", "wall_seconds",
    "busy_seconds", "utilization", "throughput",
})
#: key suffixes that denote rates derived from wall-clock
TIMING_SUFFIXES = ("_per_second", "_seconds")


def _is_timing_key(key: str) -> bool:
    return key in TIMING_KEYS \
        or any(key.endswith(suffix) for suffix in TIMING_SUFFIXES)


def canonical_metrics(doc: Any) -> Any:
    """Deep-copy ``doc`` with every wall-clock-derived key removed, at
    any nesting depth.  Two runs of the same campaign seed must be
    *equal* under this projection regardless of ``--jobs``."""
    if isinstance(doc, dict):
        return {key: canonical_metrics(value)
                for key, value in doc.items()
                if not (isinstance(key, str) and _is_timing_key(key))}
    if isinstance(doc, list):
        return [canonical_metrics(item) for item in doc]
    return copy.deepcopy(doc)


def diff_documents(a: Any, b: Any, *, ignore_timing: bool = True,
                   path: str = "$") -> List[str]:
    """Structural diff of two JSON documents; returns human-readable
    difference lines (empty = equal).  Timing keys are projected out
    first unless ``ignore_timing=False``."""
    if ignore_timing:
        return diff_documents(canonical_metrics(a),
                              canonical_metrics(b),
                              ignore_timing=False, path=path)
    differences: List[str] = []
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                differences.append(f"{path}.{key}: only in second")
            elif key not in b:
                differences.append(f"{path}.{key}: only in first")
            else:
                differences.extend(diff_documents(
                    a[key], b[key], ignore_timing=False,
                    path=f"{path}.{key}"))
        return differences
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            differences.append(
                f"{path}: length {len(a)} != {len(b)}")
            return differences
        for index, (left, right) in enumerate(zip(a, b)):
            differences.extend(diff_documents(
                left, right, ignore_timing=False,
                path=f"{path}[{index}]"))
        return differences
    if a != b or type(a) is not type(b):
        differences.append(f"{path}: {a!r} != {b!r}")
    return differences


# ---------------------------------------------------------------------------
# Fuzz campaign merge
# ---------------------------------------------------------------------------

def merge_fuzz_stats(shard_results: Sequence[Optional[Dict[str, Any]]],
                     *, seed: int,
                     configs: Sequence[str],
                     temporal: str = "off") -> "FuzzStats":
    """Fold per-shard ``FuzzStats.to_dict()`` payloads (in shard order)
    into one :class:`~repro.fuzz.driver.FuzzStats`.

    Counters sum, trap histograms sum, and failure records concatenate
    — shard order *is* iteration order because the plan splits the
    iteration range contiguously, so the merged failure list matches a
    sequential run record-for-record.  ``None`` entries (shards that
    exhausted their retry budget) are skipped; the caller reports them
    as typed :class:`~repro.par.pool.ShardFailure` results.
    """
    from repro.fuzz.driver import FuzzStats

    merged = FuzzStats(seed=seed, configs=list(configs),
                       temporal=temporal)
    histogram: Counter = Counter()
    for payload in shard_results:
        if payload is None:
            continue
        shard = FuzzStats.from_dict(payload)
        merged.iterations += shard.iterations
        merged.programs += shard.programs
        merged.executions += shard.executions
        merged.clean_runs += shard.clean_runs
        merged.attack_runs += shard.attack_runs
        merged.attacks_injected += shard.attacks_injected
        merged.attacks_detectable += shard.attacks_detectable
        merged.attacks_detected += shard.attacks_detected
        merged.expected_evasions += shard.expected_evasions
        merged.evasions_confirmed += shard.evasions_confirmed
        merged.reseed_retries += shard.reseed_retries
        merged.timeouts += shard.timeouts
        histogram.update(shard.trap_histogram)
        merged.failures.extend(shard.failures)
    merged.trap_histogram = histogram
    return merged


# ---------------------------------------------------------------------------
# Resilience campaign merge
# ---------------------------------------------------------------------------

def merge_campaign(shard_results: Sequence[Optional[Dict[str, Any]]],
                   *, seed: int, policy_name: str,
                   workloads: Sequence[str], schemes: Sequence[str],
                   faults: Sequence[str]) -> "CampaignResult":
    """Fold per-shard cell lists (in shard order) into one
    :class:`~repro.resil.matrix.CampaignResult`.

    Shards carry contiguous slices of the
    :func:`~repro.resil.matrix.enumerate_cells` order, so plain
    concatenation reproduces the sequential cell order exactly.
    """
    from repro.resil.matrix import CampaignResult, CellResult

    campaign = CampaignResult(
        seed=seed, policy_name=policy_name,
        workloads=list(workloads), schemes=list(schemes),
        faults=list(faults))
    for payload in shard_results:
        if payload is None:
            continue
        campaign.cells.extend(CellResult.from_dict(cell)
                              for cell in payload["cells"])
    return campaign


# ---------------------------------------------------------------------------
# Juliet suite merge
# ---------------------------------------------------------------------------

def merge_juliet(shard_results: Sequence[Optional[Dict[str, Any]]],
                 temporal: str = "off") -> "JulietReport":
    """Fold per-shard case verdicts into one
    :class:`~repro.juliet.runner.JulietReport`.

    Cases are regenerated deterministically on the merge side (they are
    a pure function of nothing but the generator code), so shard
    payloads only carry ``(case_index, trapped, trap)`` triples.
    ``temporal`` must match the plan's policy: an armed campaign's case
    list additionally contains the CWE-415/CWE-416 lifetime families.
    """
    from repro.juliet.cases import generate_cases, generate_temporal_cases
    from repro.juliet.runner import CaseResult, JulietReport

    cases = generate_cases()
    if temporal != "off":
        cases = cases + generate_temporal_cases()
    report = JulietReport()
    for payload in shard_results:
        if payload is None:
            continue
        for row in payload["cases"]:
            case = cases[row["case_index"]]
            report.results.append(CaseResult(
                case=case, trapped=row["trapped"], trap=row["trap"]))
    return report


# ---------------------------------------------------------------------------
# Bench sweep merge
# ---------------------------------------------------------------------------

def merge_bench(shard_results: Sequence[Optional[Dict[str, Any]]]
                ) -> Dict[str, Any]:
    """Fold per-shard ``{cell_key: metrics}`` maps into one metrics
    mapping keyed ``<workload>/<config>``."""
    merged: Dict[str, Any] = {}
    for payload in shard_results:
        if payload is None:
            continue
        merged.update(payload["cells"])
    return dict(sorted(merged.items()))
