"""Sharded parallel campaign execution: ``repro.par``.

The layer every large-scale experiment runs on.  A campaign — fuzz
iterations, resilience-matrix cells, Juliet cases, bench
configurations — is deterministically split into independent shards
(splitmix64 seed-splitting), executed by a crash-recovering
multiprocessing pool with a work-stealing queue and per-shard
wall-clock budgets, and merged back into outputs byte-identical to a
sequential run of the same seed (timing fields aside).

==============  ======================================================
module          role
==============  ======================================================
`seeds`         the repo's one splitmix64: retry reseeding, shard seed
                namespaces, the shared backoff schedule
`plan`          :class:`ShardPlan` / :class:`ShardSpec` — deterministic
                order-preserving campaign splitting
`pool`          the worker pool: work stealing, budgets, requeue-with-
                backoff crash recovery, typed :class:`ShardFailure`
`checkpoint`    resumable on-disk manifest + per-shard result files
`merge`         fold shard results into sequential-identical artifacts;
                timing-insensitive document diffing
`campaigns`     worker-side shard runners per campaign kind
`engine`        plan → execute → merge entry points for the CLIs
==============  ======================================================
"""

from repro.par.seeds import (
    GOLDEN_GAMMA, backoff_delay, derive_seed, jittered_backoff,
    shard_seed, splitmix64,
)
from repro.par.plan import (
    PLAN_KINDS, ShardPlan, ShardSpec, default_shard_count,
    plan_indices, plan_range, split_evenly,
)
from repro.par.checkpoint import Checkpoint, CheckpointMismatch
from repro.par.pool import (
    PlanResult, ShardFailure, ShardQuarantined, WorkerStats,
    install_drain_handler, resolve_runner, run_plan,
)
from repro.par.merge import (
    canonical_metrics, diff_documents, merge_bench, merge_campaign,
    merge_fuzz_stats, merge_juliet,
)
from repro.par.campaigns import SHARD_RUNNERS, runner_for
from repro.par.engine import (
    execute_plan, parallel_bench, parallel_fuzz, parallel_juliet,
    parallel_resil, parallel_selftest, plan_bench, plan_fuzz,
    plan_juliet, plan_resil, resume_checkpoint, run_campaign_plan,
)

__all__ = [
    "GOLDEN_GAMMA", "backoff_delay", "derive_seed", "jittered_backoff",
    "shard_seed", "splitmix64",
    "PLAN_KINDS", "ShardPlan", "ShardSpec", "default_shard_count",
    "plan_indices", "plan_range", "split_evenly",
    "Checkpoint", "CheckpointMismatch",
    "PlanResult", "ShardFailure", "ShardQuarantined", "WorkerStats",
    "install_drain_handler", "resolve_runner", "run_plan",
    "canonical_metrics", "diff_documents", "merge_bench",
    "merge_campaign", "merge_fuzz_stats", "merge_juliet",
    "SHARD_RUNNERS", "runner_for",
    "execute_plan", "parallel_bench", "parallel_fuzz",
    "parallel_juliet", "parallel_resil", "parallel_selftest",
    "plan_bench", "plan_fuzz", "plan_juliet", "plan_resil",
    "resume_checkpoint", "run_campaign_plan",
]
