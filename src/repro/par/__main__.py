"""CLI entry point: ``python -m repro.par``.

Ad-hoc sharded campaign execution plus the determinism tooling the CI
gates use.

Examples::

    # the Juliet suite across 4 workers, resumable
    python -m repro.par juliet --jobs 4 --checkpoint ckpt-juliet

    # ad-hoc sharded bench sweep, merged into one metrics document
    python -m repro.par bench --workloads treeadd,anagram \\
        --configs baseline,wrapped,subheap --jobs 2 --out sweep.json

    # resume any interrupted checkpointed campaign
    python -m repro.par resume --checkpoint ckpt-juliet --jobs 4

    # CI determinism gate: --jobs N output == --jobs 1 output
    python -m repro.par diff metrics-j1.json metrics-j4.json
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import threading

from repro.par.engine import (
    parallel_bench, parallel_juliet, plan_bench, plan_juliet,
    resume_checkpoint,
)
from repro.par.merge import diff_documents
from repro.par.pool import install_drain_handler

#: exit code for a campaign drained by SIGTERM/SIGINT: the checkpoint
#: is resumable, but the run did not complete
EXIT_DRAINED = 3


@contextlib.contextmanager
def _drain_on_signal(log):
    """First SIGTERM/SIGINT drains the pool (in-flight shards finish
    and checkpoint); a second one aborts immediately."""
    stop = threading.Event()
    restore = install_drain_handler(stop, log=log)
    try:
        yield stop
    finally:
        restore()


def _log_for(args):
    return (lambda message: None) if args.quiet else print


def _print_outcome(outcome, quiet: bool) -> None:
    if not quiet:
        print(outcome.summary())
    if outcome.drained:
        print("drained: campaign interrupted; resume with "
              "`python -m repro.par resume --checkpoint DIR`",
              file=sys.stderr)


def _cmd_juliet(args) -> int:
    plan = plan_juliet(seed=args.seed, allocator=args.allocator,
                       jobs=args.jobs, shard_size=args.shard_size)
    with _drain_on_signal(_log_for(args)) as stop:
        report, outcome = parallel_juliet(
            plan, jobs=args.jobs, checkpoint_dir=args.checkpoint,
            shard_timeout=args.shard_timeout,
            shard_retries=args.retries, log=_log_for(args), stop=stop)
    print(report.summary())
    _print_outcome(outcome, args.quiet)
    if args.out:
        from repro.obs.metrics import metrics_document, write_metrics
        by_cwe = {cwe: dict(row)
                  for cwe, row in report.by_cwe().items()}
        path = write_metrics(args.out, metrics_document(
            "juliet_parallel",
            {"seed": args.seed, "allocator": args.allocator},
            {"total": report.total, "detected": report.detected,
             "bad_total": report.bad_total,
             "false_positives": report.false_positives,
             "good_total": report.good_total, "by_cwe": by_cwe,
             "pool": outcome.utilization_metrics()}))
        print(f"metrics written to {path}")
    if outcome.drained:
        return EXIT_DRAINED
    return 0 if report.all_passed and outcome.ok else 1


def _cmd_bench(args) -> int:
    workloads = [w.strip() for w in args.workloads.split(",")
                 if w.strip()]
    configs = [c.strip() for c in args.configs.split(",") if c.strip()]
    from repro.eval.configs import CONFIG_NAMES
    from repro.workloads import WORKLOADS
    unknown = [w for w in workloads if w not in WORKLOADS]
    if unknown:
        print(f"unknown workload(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    unknown = [c for c in configs if c not in CONFIG_NAMES]
    if unknown:
        print(f"unknown configuration(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    plan = plan_bench(workloads=workloads, configs=configs,
                      scale=args.scale,
                      timeout_seconds=args.shard_timeout,
                      seed=args.seed, jobs=args.jobs,
                      shard_size=args.shard_size, engine=args.engine)
    with _drain_on_signal(_log_for(args)) as stop:
        cells, outcome = parallel_bench(
            plan, jobs=args.jobs, checkpoint_dir=args.checkpoint,
            shard_timeout=args.shard_timeout,
            shard_retries=args.retries, log=_log_for(args), stop=stop)
    for key in cells:
        print(f"  {key:30s} instructions="
              f"{cells[key].get('total_instructions', 0)}")
    _print_outcome(outcome, args.quiet)
    if args.out:
        from repro.obs.metrics import metrics_document, write_metrics
        path = write_metrics(args.out, metrics_document(
            "bench_sweep",
            {"workloads": ",".join(workloads),
             "configs": ",".join(configs), "scale": args.scale},
            {"cells": cells, "pool": outcome.utilization_metrics()}))
        print(f"metrics written to {path}")
    if outcome.drained:
        return EXIT_DRAINED
    return 0 if outcome.ok else 1


def _cmd_resume(args) -> int:
    try:
        with _drain_on_signal(_log_for(args)) as stop:
            kind, merged, outcome = resume_checkpoint(
                args.checkpoint, jobs=args.jobs,
                shard_timeout=args.shard_timeout,
                shard_retries=args.retries, log=_log_for(args),
                stop=stop)
    except (FileNotFoundError, ValueError) as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 2
    if kind == "fuzz":
        print(merged.summary())
        ok = merged.ok
    elif kind == "resil":
        print(merged.render())
        ok = merged.ok
    elif kind == "juliet":
        print(merged.summary())
        ok = merged.all_passed
    else:
        print(json.dumps(merged, indent=2, sort_keys=True))
        ok = True
    _print_outcome(outcome, args.quiet)
    if outcome.drained:
        return EXIT_DRAINED
    return 0 if ok and outcome.ok else 1


def _cmd_diff(args) -> int:
    with open(args.first) as handle:
        first = json.load(handle)
    with open(args.second) as handle:
        second = json.load(handle)
    differences = diff_documents(first, second,
                                 ignore_timing=not args.strict_timing)
    if differences:
        print(f"{args.first} != {args.second} "
              f"({len(differences)} difference(s)):")
        for line in differences[:args.max_diffs]:
            print(f"  {line}")
        if len(differences) > args.max_diffs:
            print(f"  ... {len(differences) - args.max_diffs} more")
        return 1
    timing_note = "" if args.strict_timing \
        else " (timing fields ignored)"
    print(f"identical: {args.first} == {args.second}{timing_note}")
    return 0


def _add_pool_args(parser) -> None:
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--shard-size", type=int, default=0,
                        help="items per shard (default: auto, "
                             "4 shards per worker)")
    parser.add_argument("--checkpoint", metavar="DIR",
                        help="resumable checkpoint directory")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per shard attempt")
    parser.add_argument("--retries", type=int, default=2,
                        help="requeues per failed shard (default 2)")
    parser.add_argument("--seed", "-s", type=int, default=0,
                        help="campaign master seed (default 0)")
    parser.add_argument("--quiet", "-q", action="store_true")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.par",
        description="Sharded parallel campaign execution for the IFP "
                    "pipeline.")
    sub = parser.add_subparsers(dest="command", required=True)

    juliet = sub.add_parser(
        "juliet", help="run the Juliet-style suite across workers")
    juliet.add_argument("--allocator", choices=("wrapped", "subheap"),
                        default="wrapped")
    juliet.add_argument("--out", metavar="JSON",
                        help="write schema-v1 metrics JSON here")
    _add_pool_args(juliet)
    juliet.set_defaults(func=_cmd_juliet)

    bench = sub.add_parser(
        "bench", help="ad-hoc sharded (workload x config) sweep")
    bench.add_argument("--workloads", default="treeadd,anagram",
                       help="comma-separated workload list")
    bench.add_argument("--configs", default="baseline,wrapped,subheap",
                       help="comma-separated configuration list")
    bench.add_argument("--scale", type=int, default=1)
    bench.add_argument("--engine", default="auto",
                       choices=("auto", "fastpath", "superblock", "reference"),
                       help="execution engine; byte-identical results "
                            "either way (default auto)")
    bench.add_argument("--out", metavar="JSON",
                       help="write schema-v1 metrics JSON here")
    _add_pool_args(bench)
    bench.set_defaults(func=_cmd_bench)

    resume = sub.add_parser(
        "resume", help="resume a checkpointed campaign of any kind")
    resume.add_argument("--checkpoint", required=True, metavar="DIR")
    resume.add_argument("--jobs", "-j", type=int, default=1)
    resume.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS")
    resume.add_argument("--retries", type=int, default=2)
    resume.add_argument("--quiet", "-q", action="store_true")
    resume.set_defaults(func=_cmd_resume)

    diff = sub.add_parser(
        "diff", help="compare two metrics documents, ignoring "
                     "wall-clock-derived fields")
    diff.add_argument("first", metavar="A.json")
    diff.add_argument("second", metavar="B.json")
    diff.add_argument("--strict-timing", action="store_true",
                      help="also compare timing fields")
    diff.add_argument("--max-diffs", type=int, default=20)
    diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
