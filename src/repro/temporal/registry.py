"""The sharded allocation registry: locks for the lock-and-key scheme.

One entry per tracked allocation base, living in one of
``shard_count`` hash shards (selected by the base address, so the
host-side structure scales the way a banked hardware lock cache or a
striped lock table would).  Each entry is a small mutable record
``[key, live, size, generation]``:

* ``generation`` counts incarnations of the base address and only ever
  grows; ``key`` is its projection into the k-bit tag field
  (``((generation - 1) % (2^k - 1)) + 1`` — never 0, which is the
  "untracked" sentinel);
* ``live`` is the lock state: a free marks the lock dead *and* bumps
  the generation, so a dangling key mismatches whether or not the base
  is ever reallocated.

``version`` is bumped on every architectural change (mint, release,
corruption) and participates in the IFP unit's promote-result cache
key, so a cached promote can never replay a bounds register whose
temporal facts have changed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import TemporalViolation
from repro.ifp.tag import temporal_key_of

#: entry field indices (entries are lists for cheap mutation)
KEY = 0
LIVE = 1
SIZE = 2
GENERATION = 3


def _key_of(generation: int, key_bits: int) -> int:
    """Project a monotonic generation into the k-bit key space (1..2^k-1)."""
    return ((generation - 1) % ((1 << key_bits) - 1)) + 1


class TemporalRegistry:
    """Sharded base-address -> lock table."""

    def __init__(self, key_bits: int = 2, shard_count: int = 16):
        if key_bits < 1:
            raise ValueError("temporal registry needs at least 1 key bit")
        if shard_count & (shard_count - 1):
            raise ValueError("shard_count must be a power of two")
        self.key_bits = key_bits
        self.shard_count = shard_count
        self._shard_mask = shard_count - 1
        #: shard index uses bits above the typical 16-byte allocation
        #: alignment so consecutive allocations spread across shards
        self._shards: List[dict] = [dict() for _ in range(shard_count)]
        #: bumped on mint/release/corrupt; part of the promote-cache key
        self.version = 0
        # lifetime counters (forensics / registry stats)
        self.mints = 0
        self.releases = 0
        self.live_count = 0

    def _shard(self, base: int) -> dict:
        return self._shards[(base >> 4) & self._shard_mask]

    # -- lock lifecycle ------------------------------------------------------

    def mint(self, base: int, size: int) -> int:
        """Mint (or re-mint) the lock for ``base``; returns the new key.

        A fresh base starts at generation 1; a reused base continues its
        generation sequence (the release already bumped it), so the new
        key differs from every dangling key of the previous incarnation
        modulo the k-bit wrap.
        """
        shard = self._shard(base)
        entry = shard.get(base)
        if entry is None:
            entry = [_key_of(1, self.key_bits), True, size, 1]
            shard[base] = entry
        else:
            entry[KEY] = _key_of(entry[GENERATION], self.key_bits)
            entry[LIVE] = True
            entry[SIZE] = size
        self.mints += 1
        self.live_count += 1
        self.version += 1
        return entry[KEY]

    def release(self, base: int) -> Optional[list]:
        """Destroy the lock for ``base`` (free/realloc path).

        Bumps the generation and marks the lock dead; returns the entry
        (or None for an untracked base, which is left to the allocators'
        structural :class:`repro.errors.InvalidFree` checks).
        """
        entry = self._shard(base).get(base)
        if entry is None:
            return None
        if entry[LIVE]:
            self.live_count -= 1
        entry[LIVE] = False
        entry[GENERATION] += 1
        self.releases += 1
        self.version += 1
        return entry

    def probe(self, base: int) -> Optional[list]:
        """Current lock entry for ``base`` (None when untracked)."""
        return self._shard(base).get(base)

    def corrupt(self, base: int) -> bool:
        """Flip the lock's key to a different value in the key space.

        The resil fault hook: simulates registry corruption (a flipped
        generation).  The entry stays live, so every subsequent check of
        a legitimately-minted pointer mismatches — the gate is that this
        surfaces as a typed :class:`TemporalViolation`, never as silent
        divergence.
        """
        entry = self._shard(base).get(base)
        if entry is None:
            return False
        entry[KEY] = _key_of(entry[GENERATION] + 1, self.key_bits)
        if entry[KEY] == 0:  # pragma: no cover - _key_of never returns 0
            entry[KEY] = 1
        self.version += 1
        return True

    def any_live_base(self) -> Optional[int]:
        """Some currently-live base, if any (fault-injection target)."""
        for shard in self._shards:
            for base, entry in shard.items():
                if entry[LIVE]:
                    return base
        return None

    def stats(self) -> dict:
        return {
            "key_bits": self.key_bits,
            "shard_count": self.shard_count,
            "mints": self.mints,
            "releases": self.releases,
            "live": self.live_count,
            "tracked_bases": sum(len(s) for s in self._shards),
            "version": self.version,
        }


# ---------------------------------------------------------------------------
# Shared violation construction — both execution engines and the
# allocator free paths build their traps through these helpers, which is
# what keeps messages/fields byte-identical across the reference
# interpreter and the fastpath compiler.
# ---------------------------------------------------------------------------

_DEREF_KINDS = {
    "promote": ("stale_key", "freed_lock"),
    "load": ("stale_key", "freed_lock"),
    "store": ("stale_key", "freed_lock"),
}


def temporal_violation(origin: str, pointer: int, base: int, key: int,
                       entry: Optional[list],
                       pc: object = None) -> TemporalViolation:
    """Build the trap for a failed lock==key comparison at a deref site."""
    if entry is None or not entry[LIVE]:
        kind = "freed_lock"
        lock = 0
        detail = "lock is dead (allocation freed, not reallocated)"
    else:
        kind = "stale_key"
        lock = entry[KEY]
        detail = (f"lock holds key {lock} (allocation freed and base "
                  f"reused)")
    message = (f"temporal violation at {origin}: pointer key {key} vs "
               f"lock for base 0x{base:x} — {detail}")
    return TemporalViolation(message, pointer=pointer, address=base,
                             key=key, lock=lock, kind=kind, origin=origin,
                             pc=pc)


def check_free(registry: TemporalRegistry, pointer: int, base: int,
               key: int, allocator: str) -> Optional[list]:
    """Free-path lock check: raises on double free / stale-pointer free.

    Runs *before* the allocator's structural checks, so a tracked
    allocation's double free surfaces as the typed temporal trap (the
    structural :class:`InvalidFree` remains the verdict for untracked
    pointers).  Returns the live entry on success, None when the base is
    untracked.
    """
    entry = registry.probe(base)
    if entry is None or key == 0:
        return None
    if not entry[LIVE]:
        raise TemporalViolation(
            f"temporal violation at free: double free of base 0x{base:x} "
            f"via {allocator} — lock is already dead",
            pointer=pointer, address=base, key=key, lock=0,
            kind="double_free", origin="free")
    if entry[KEY] != key:
        raise TemporalViolation(
            f"temporal violation at free: stale pointer key {key} vs "
            f"live lock key {entry[KEY]} for base 0x{base:x} via "
            f"{allocator} — freeing a previous incarnation's pointer",
            pointer=pointer, address=base, key=key, lock=entry[KEY],
            kind="stale_free", origin="free")
    return entry


def extract_key(pointer: int, config) -> int:
    """Tag key of a packed pointer under ``config`` (0 when untracked)."""
    return temporal_key_of(pointer, config)
