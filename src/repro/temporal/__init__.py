"""Lock-and-key temporal memory safety (use-after-free / double free).

The subsystem pairs a *key* carried in reserved pointer-tag bits with a
*lock* held in a sharded allocation registry keyed by allocation base:

* every tracked allocation mints a generation key (1..2^k-1; 0 means
  "untracked") that is stamped into the top ``k`` bits of the pointer
  tag's subobject/index field (:mod:`repro.ifp.tag`) and mirrored in
  the bounds register (:class:`repro.ifp.bounds.Bounds`);
* ``free``/``realloc`` *release* the lock (bump the generation, mark it
  dead), so a dangling pointer's key can never match again;
* the IFP unit compares lock == key at promote, and both execution
  engines compare it at every bounds-checked load/store, raising the
  typed :class:`repro.errors.TemporalViolation` on mismatch.

Policies (``MachineConfig.temporal``): ``off`` disables everything
(zero cost — no key bits are reserved and no registry exists);
``check`` arms the checks while allocators reuse addresses normally
(a k-bit key cycles, so 2^k-1 reuses of one base can alias — see
DESIGN §11); ``quarantine`` additionally suppresses address reuse in
the allocators so a stale key can never collide with a live one.
"""

from repro.temporal.registry import (
    TemporalRegistry, check_free, temporal_violation,
)

__all__ = [
    "TemporalRegistry", "check_free", "temporal_violation",
]
