"""The 18 application benchmarks of the paper's Section 5.2.

Suites: Olden (10), PtrDist (4), and the four standalone applications
(wolfcrypt-dh, sjeng, CoreMark, bzip2).  ``all_workloads()`` returns them
in the paper's Table 4 order.
"""

from typing import Dict, List

from repro.workloads.base import Workload
from repro.workloads.olden_trees import BISORT, PERIMETER, TREEADD
from repro.workloads.olden_graph import EM3D, HEALTH, MST
from repro.workloads.olden_compute import BH, POWER, TSP, VORONOI
from repro.workloads.ptrdist import ANAGRAM, FT, KS, YACR2
from repro.workloads.apps import BZIP2, COREMARK, SJENG, WOLFCRYPT_DH

#: Table 4 order.
_ORDERED: List[Workload] = [
    BH, BISORT, EM3D, HEALTH, MST, PERIMETER, POWER, TREEADD, TSP, VORONOI,
    ANAGRAM, FT, KS, YACR2,
    WOLFCRYPT_DH, SJENG, COREMARK, BZIP2,
]

WORKLOADS: Dict[str, Workload] = {w.name: w for w in _ORDERED}


def all_workloads() -> List[Workload]:
    """Every benchmark, in the paper's Table 4 order."""
    return list(_ORDERED)


def get(name: str) -> Workload:
    return WORKLOADS[name]


__all__ = ["Workload", "WORKLOADS", "all_workloads", "get"]
