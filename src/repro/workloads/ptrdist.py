"""PtrDist benchmarks: anagram, ft, ks, yacr2.

Paper-reported behaviours preserved:

* **anagram** calls ctype classification in loops through glibc's
  ``__ctype_b_loc`` double-pointer pattern — every classification
  dereference promotes a *legacy* pointer (the paper's worked example);
  its word records are direct typed allocations (~100 % LT);
* **ft** (Fibonacci-heap MST) has the paper's highest promote density and
  a cache-thrashing baseline: a large edge array is traversed with poor
  locality, so the wrapped allocator's scattered metadata doubles L1
  misses while the subheap's shared metadata stays resident;
* **ks** (Kernighan-Schweikert partition) has ~17 % promotes and is the
  paper's example of the subheap scheme being *slower* than wrapped when
  metadata fits in cache (bigger records, unpipelined fetch);
* **yacr2** (channel router) works on arrays reached through escaping
  global pointers.
"""

from __future__ import annotations

from repro.workloads.base import Workload

_WORDS = ("listen silent enlist tinsel inlets pots stop tops spot opts "
          "stare rates tears aster taser resat cat act tac arc car dog "
          "god odg part trap rapt tarp evil vile live veil least slate "
          "stale steal tales")


def _anagram_source(scale: int) -> str:
    words = " ".join([_WORDS] * scale)
    return f"""
/* PtrDist anagram: group dictionary words by letter signature. */
struct word {{
    char text[24];
    long signature;      /* product of letter primes (mod 2^48) */
    struct word *next;
}};

char *g_dict = "{words}";
struct word *g_words;
int g_primes[26] = {{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43,
                     47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101}};

long signature_of(char *text) {{
    long sig = 1;
    int i = 0;
    /* glibc ctype pattern: double-pointer table lookup per character.
       The loaded table pointer is a legacy pointer -> promote bypass. */
    unsigned short **loc = __ctype_b_loc();
    while (text[i] != 0) {{
        unsigned short *table = *loc;
        int c = text[i];
        if (isalpha(c)) {{
            sig = (sig * g_primes[(c | 32) - 'a']) & 0xffffffffffff;
        }}
        i++;
    }}
    return sig;
}}

int main(void) {{
    /* Tokenise the embedded dictionary. */
    char *p = g_dict;
    int count = 0;
    while (*p != 0) {{
        while (*p == ' ') {{ p++; }}
        if (*p == 0) {{ break; }}
        struct word *w = (struct word *)malloc(sizeof(struct word));
        int len = 0;
        while (*p != 0 && *p != ' ' && len < 23) {{
            w->text[len] = *p;
            len++;
            p++;
        }}
        w->text[len] = 0;
        w->signature = signature_of(w->text);
        w->next = g_words;
        g_words = w;
        count++;
    }}
    /* Count anagram pairs. */
    long pairs = 0;
    struct word *a;
    for (a = g_words; a != NULL; a = a->next) {{
        struct word *b;
        for (b = a->next; b != NULL; b = b->next) {{
            if (a->signature == b->signature
                    && strcmp(a->text, b->text) != 0) {{
                pairs++;
            }}
        }}
    }}
    printf("anagram: %d words %d pairs\\n", count, (int)pairs);
    return 0;
}}
"""


def _ft_source(scale: int) -> str:
    vertices = 60 * scale
    degree = 4
    return f"""
/* PtrDist ft: minimum spanning tree via repeated lightest-edge scans
   over a large, poorly-localised edge array (cache-thrashing kernel). */
struct edge {{
    int src;
    int dst;
    int weight;
    int pad[13];         /* spread edges across cache lines */
}};

struct heap_node {{
    int vertex;
    int key;
    struct heap_node *parent;
    struct heap_node *child;
    struct heap_node *sibling;
}};

int g_seed = 3;

int frand(int m) {{
    g_seed = (g_seed * 1103515245 + 12345) & 0x7fffffff;
    return g_seed % m;
}}

int main(void) {{
    int v = {vertices};
    int e = v * {degree};
    struct edge *edges = (struct edge *)malloc(e * sizeof(struct edge));
    struct heap_node **nodes = (struct heap_node **)
        malloc(v * sizeof(struct heap_node *));
    int i;
    for (i = 0; i < v; i++) {{
        struct heap_node *n =
            (struct heap_node *)malloc(sizeof(struct heap_node));
        n->vertex = i;
        n->key = 0x7fffffff;
        n->parent = NULL;
        n->child = NULL;
        n->sibling = NULL;
        nodes[i] = n;
    }}
    /* Scatter edges so consecutive scans jump across the array. */
    for (i = 0; i < e; i++) {{
        int slot = (i * 7919) % e;
        edges[slot].src = i % v;
        edges[slot].dst = frand(v);
        edges[slot].weight = 1 + frand(10000);
    }}
    /* Prim-like: grow tree, scanning all edges each round. */
    int in_tree_count = 1;
    nodes[0]->key = 0;
    long total = 0;
    while (in_tree_count < v) {{
        int best_w = 0x7fffffff;
        int best_v = -1;
        for (i = 0; i < e; i++) {{
            struct edge *ed = &edges[(i * 2654435761) % e];
            struct heap_node *s = nodes[ed->src];
            struct heap_node *d = nodes[ed->dst];
            if (s->key != 0x7fffffff && d->key == 0x7fffffff) {{
                if (ed->weight < best_w) {{
                    best_w = ed->weight;
                    best_v = ed->dst;
                }}
            }}
        }}
        if (best_v < 0) {{
            /* Disconnected: claim the first unreached vertex. */
            for (i = 0; i < v; i++) {{
                if (nodes[i]->key == 0x7fffffff) {{
                    best_v = i;
                    best_w = 0;
                    break;
                }}
            }}
        }}
        nodes[best_v]->key = best_w;
        total += best_w;
        in_tree_count++;
    }}
    printf("ft: %d\\n", (int)(total & 0xffffff));
    return 0;
}}
"""


def _ks_source(scale: int) -> str:
    modules = 24 * scale
    nets = 32 * scale
    passes = 4
    return f"""
/* PtrDist ks: Kernighan-Schweikert graph partitioning. */
struct net {{
    int a;
    int b;
    int weight;
}};

struct module {{
    int side;        /* 0 = left, 1 = right */
    int gain;
}};

struct module *g_mods;
struct net **g_nets;      /* pointer table: every visit reloads + promotes */
int g_seed = 41;

int krand(int m) {{
    g_seed = (g_seed * 1103515245 + 12345) & 0x7fffffff;
    return g_seed % m;
}}

long cut_cost(int net_count) {{
    long cost = 0;
    int i;
    for (i = 0; i < net_count; i++) {{
        struct net *n = g_nets[i];
        if (g_mods[n->a].side != g_mods[n->b].side) {{
            cost += n->weight;
        }}
    }}
    return cost;
}}

int main(void) {{
    g_mods = (struct module *)malloc({modules} * sizeof(struct module));
    g_nets = (struct net **)malloc({nets} * sizeof(struct net *));
    int i;
    for (i = 0; i < {modules}; i++) {{
        g_mods[i].side = i % 2;
        g_mods[i].gain = 0;
    }}
    for (i = 0; i < {nets}; i++) {{
        struct net *n = (struct net *)malloc(sizeof(struct net));
        n->a = krand({modules});
        n->b = krand({modules});
        n->weight = 1 + krand(9);
        g_nets[i] = n;
    }}
    long best = cut_cost({nets});
    int pass;
    for (pass = 0; pass < {passes}; pass++) {{
        /* Compute gains and flip the best module. */
        for (i = 0; i < {modules}; i++) {{
            g_mods[i].gain = 0;
        }}
        for (i = 0; i < {nets}; i++) {{
            struct net *n = g_nets[i];
            int cut = g_mods[n->a].side != g_mods[n->b].side;
            int delta = cut ? n->weight : -n->weight;
            g_mods[n->a].gain += delta;
            g_mods[n->b].gain += delta;
        }}
        int best_mod = 0;
        for (i = 1; i < {modules}; i++) {{
            if (g_mods[i].gain > g_mods[best_mod].gain) {{
                best_mod = i;
            }}
        }}
        g_mods[best_mod].side = 1 - g_mods[best_mod].side;
        long cost = cut_cost({nets});
        if (cost < best) {{
            best = cost;
        }}
    }}
    printf("ks: %d\\n", (int)best);
    return 0;
}}
"""


def _yacr2_source(scale: int) -> str:
    terminals = 20 * scale
    return f"""
/* PtrDist yacr2: VLSI channel routing (left-edge algorithm). */
struct interval {{
    int left;
    int right;
    int track;
    struct interval *next;
}};

struct interval *g_channel;   /* escaping global list head */
int g_seed = 61;

int yrand(int m) {{
    g_seed = (g_seed * 1103515245 + 12345) & 0x7fffffff;
    return g_seed % m;
}}

void *yalloc(unsigned long size) {{
    return malloc(size);   /* allocation wrapper: hides the type (2% LT) */
}}

void add_interval(int left, int right) {{
    struct interval *iv =
        (struct interval *)yalloc(sizeof(struct interval));
    iv->left = left;
    iv->right = right;
    iv->track = -1;
    /* Insert sorted by left edge. */
    if (g_channel == NULL || g_channel->left >= left) {{
        iv->next = g_channel;
        g_channel = iv;
        return;
    }}
    struct interval *p = g_channel;
    while (p->next != NULL && p->next->left < left) {{
        p = p->next;
    }}
    iv->next = p->next;
    p->next = iv;
}}

int route(void) {{
    /* Left-edge: assign each interval the lowest non-conflicting track. */
    int tracks = 0;
    int track_right[64];
    int t;
    for (t = 0; t < 64; t++) {{
        track_right[t] = -1;
    }}
    struct interval *iv;
    for (iv = g_channel; iv != NULL; iv = iv->next) {{
        for (t = 0; t < 64; t++) {{
            if (track_right[t] < iv->left) {{
                iv->track = t;
                track_right[t] = iv->right;
                if (t + 1 > tracks) {{
                    tracks = t + 1;
                }}
                break;
            }}
        }}
    }}
    return tracks;
}}

int main(void) {{
    int i;
    for (i = 0; i < {terminals}; i++) {{
        int left = yrand(1000);
        add_interval(left, left + 5 + yrand(200));
    }}
    int tracks = route();
    long check = 0;
    struct interval *iv;
    for (iv = g_channel; iv != NULL; iv = iv->next) {{
        check += iv->track * 13 + iv->left;
    }}
    printf("yacr2: %d tracks %d\\n", tracks, (int)(check & 0xffffff));
    return 0;
}}
"""


ANAGRAM = Workload(
    name="anagram", suite="ptrdist",
    description="Group dictionary words by letter-product signatures.",
    paper_notes="Legacy promotes from the __ctype_b_loc double-pointer "
                "pattern (the paper's worked example); word records are "
                "direct typed allocations (~100% LT).",
    source_fn=_anagram_source, expected_output="anagram:")

FT = Workload(
    name="ft", suite="ptrdist",
    description="Minimum spanning tree over a scattered edge array.",
    paper_notes="Highest promote density; cache-thrashing baseline — the "
                "wrapped allocator's scattered metadata nearly doubles "
                "L1D misses (93% in the paper) while subheap adds ~0%.",
    source_fn=_ft_source, expected_output="ft:")

KS = Workload(
    name="ks", suite="ptrdist",
    description="Kernighan-Schweikert graph partitioning.",
    paper_notes="~17% promotes; the paper's example of subheap being "
                "slower than wrapped when metadata fits in cache.",
    source_fn=_ks_source, expected_output="ks:")

YACR2 = Workload(
    name="yacr2", suite="ptrdist",
    description="Channel routing by the left-edge algorithm.",
    paper_notes="Escaping global list head; 85 heap objects with 2% LT "
                "in the paper; modest overhead.",
    source_fn=_yacr2_source, expected_output="yacr2:")
