"""Workload definitions: the 18 application benchmarks of Section 5.2.

Each workload is a mini-C program engineered to preserve the paper's
reported allocation/pointer behaviour for that benchmark (see each
module's docstring and DESIGN.md's substitution table).  ``source(scale)``
renders the program at a given input scale; scale 1 is sized so a full
five-configuration sweep of all 18 programs completes in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class Workload:
    name: str
    suite: str           #: 'olden' | 'ptrdist' | 'other'
    description: str
    #: what the paper reports for this program, preserved here
    paper_notes: str
    source_fn: Callable[[int], str]
    #: substring expected in stdout (sanity check that all configurations
    #: compute the same answer)
    expected_output: Optional[str] = None

    def source(self, scale: int = 1) -> str:
        return self.source_fn(scale)
