"""Application benchmarks: wolfcrypt-dh, sjeng, CoreMark, bzip2.

Paper-reported behaviours preserved:

* **wolfcrypt-dh** — Diffie-Hellman key agreement.  Bignum limb arrays
  are allocated through wolfSSL's ``XMALLOC`` *function-pointer* hook, so
  the compiler cannot deduce types: no layout tables (the paper calls
  this out for wolfcrypt and bzip2);
* **sjeng** — game-tree search with one large escaping global (the
  paper's only global-table global) and many NULL/legacy promotes (only
  26 % of its promotes are valid);
* **CoreMark** — performs a *single* ``malloc`` and carves every data
  structure out of it by hand; pointers into the buffer carry non-zero
  subobject indices but the object has no layout table, so **all its
  subobject narrowings fail** and bounds coarsen to the whole buffer
  (29 % of promotes are subobject promotes in the paper);
* **bzip2** — run-length + move-to-front compression; allocations go
  through function-pointer wrappers (``bzalloc``), several large globals
  use the global-table scheme.
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _wolfcrypt_dh_source(scale: int) -> str:
    limbs = 8
    rounds = 2 * scale
    return f"""
/* wolfcrypt Diffie-Hellman: modular exponentiation over {limbs}-limb
   bignums (16-bit limbs in 32-bit cells so products fit in a long). */
struct mp_int {{
    unsigned int used;
    unsigned int limb[{limbs} * 2];
}};

/* wolfSSL XMALLOC hook: allocation through a function pointer, so no
   layout tables can be generated for bignum state. */
void *(*XMALLOC)(unsigned long);
void *default_alloc(unsigned long size) {{ return malloc(size); }}

struct mp_int *mp_new(void) {{
    struct mp_int *x = (struct mp_int *)XMALLOC(sizeof(struct mp_int));
    unsigned int i;
    x->used = 1;
    for (i = 0; i < {limbs} * 2; i++) {{
        x->limb[i] = 0;
    }}
    return x;
}}

void mp_set(struct mp_int *x, unsigned int v) {{
    unsigned int i;
    for (i = 0; i < {limbs} * 2; i++) {{
        x->limb[i] = 0;
    }}
    x->limb[0] = v & 0xffff;
    x->limb[1] = (v >> 16) & 0xffff;
    x->used = 2;
}}

/* r = a * b mod m, schoolbook multiply + trial-subtraction reduction
   against a pseudo-Mersenne modulus (2^(16*{limbs}) - c). */
void mp_mulmod(struct mp_int *r, struct mp_int *a, struct mp_int *b,
               unsigned int c) {{
    unsigned long acc[{limbs} * 2];
    int i;
    int j;
    for (i = 0; i < {limbs} * 2; i++) {{
        acc[i] = 0;
    }}
    for (i = 0; i < {limbs}; i++) {{
        for (j = 0; j < {limbs}; j++) {{
            acc[i + j] += (unsigned long)a->limb[i] * b->limb[j];
        }}
    }}
    /* Fold the high limbs back in: 2^(16*{limbs}) == c (mod m). */
    for (i = {limbs} * 2 - 1; i >= {limbs}; i--) {{
        acc[i - {limbs}] += acc[i] * c;
        acc[i] = 0;
    }}
    /* Carry propagation. */
    unsigned long carry = 0;
    for (i = 0; i < {limbs}; i++) {{
        unsigned long t = acc[i] + carry;
        r->limb[i] = (unsigned int)(t & 0xffff);
        carry = t >> 16;
    }}
    while (carry != 0) {{
        unsigned long t = r->limb[0] + carry * c;
        r->limb[0] = (unsigned int)(t & 0xffff);
        carry = t >> 16;
        for (i = 1; carry != 0 && i < {limbs}; i++) {{
            t = r->limb[i] + carry;
            r->limb[i] = (unsigned int)(t & 0xffff);
            carry = t >> 16;
        }}
    }}
    r->used = {limbs};
}}

void mp_copy(struct mp_int *dst, struct mp_int *src) {{
    unsigned int i;
    for (i = 0; i < {limbs} * 2; i++) {{
        dst->limb[i] = src->limb[i];
    }}
    dst->used = src->used;
}}

/* r = g^e mod m by square-and-multiply. */
void mp_exptmod(struct mp_int *r, struct mp_int *g, unsigned long e,
                unsigned int c) {{
    struct mp_int *base = mp_new();
    struct mp_int *tmp = mp_new();
    mp_copy(base, g);
    mp_set(r, 1);
    while (e != 0) {{
        if (e & 1) {{
            mp_mulmod(tmp, r, base, c);
            mp_copy(r, tmp);
        }}
        mp_mulmod(tmp, base, base, c);
        mp_copy(base, tmp);
        e = e >> 1;
    }}
    free(tmp);
    free(base);
}}

int main(void) {{
    XMALLOC = default_alloc;
    unsigned int c = 189;     /* modulus 2^128 - 189 flavour */
    long check = 0;
    int round;
    for (round = 0; round < {rounds}; round++) {{
        struct mp_int *g = mp_new();
        struct mp_int *pub_a = mp_new();
        struct mp_int *pub_b = mp_new();
        struct mp_int *secret_a = mp_new();
        struct mp_int *secret_b = mp_new();
        mp_set(g, 5);
        unsigned long xa = 0x1234567 + round;
        unsigned long xb = 0x89abcde + round * 3;
        mp_exptmod(pub_a, g, xa, c);      /* A = g^xa */
        mp_exptmod(pub_b, g, xb, c);      /* B = g^xb */
        mp_exptmod(secret_a, pub_b, xa, c);  /* B^xa */
        mp_exptmod(secret_b, pub_a, xb, c);  /* A^xb */
        int i;
        int agree = 1;
        for (i = 0; i < {limbs}; i++) {{
            if (secret_a->limb[i] != secret_b->limb[i]) {{
                agree = 0;
            }}
        }}
        check += agree * 1000 + secret_a->limb[0];
        free(g); free(pub_a); free(pub_b);
        free(secret_a); free(secret_b);
    }}
    printf("wolfcrypt-dh: %d\\n", (int)(check & 0xffffff));
    return 0;
}}
"""


def _sjeng_source(scale: int) -> str:
    depth = 3 + (1 if scale > 1 else 0)
    return f"""
/* sjeng: alpha-beta game-tree search on a 5x5 capture game with the
   large global state tables sjeng keeps (history heuristic). */
struct tt_entry {{
    long key;
    int score;
    int depth;
}};

int g_board[32];                     /* 0 empty, 1 us, 2 them */
long g_history[32 * 32];             /* large escaping global -> GT */
struct tt_entry *g_tt[128];          /* transposition table: mostly NULL */
long *g_last_history;                /* reloaded pointer into g_history */
int g_nodes = 0;
int g_seed = 77;

int srand2(int m) {{
    g_seed = (g_seed * 1103515245 + 12345) & 0x7fffffff;
    return g_seed % m;
}}

void init_board(void) {{
    int i;
    for (i = 0; i < 25; i++) {{
        g_board[i] = (i < 5) ? 2 : ((i >= 20) ? 1 : 0);
    }}
}}

int evaluate(void) {{
    int score = 0;
    int i;
    for (i = 0; i < 25; i++) {{
        if (g_board[i] == 1) {{ score += 10 + i / 5; }}
        if (g_board[i] == 2) {{ score -= 10 + (24 - i) / 5; }}
    }}
    return score;
}}

int gen_moves(int side, int *moves) {{
    int count = 0;
    int i;
    for (i = 0; i < 25; i++) {{
        if (g_board[i] == side) {{
            int d[4];
            d[0] = i - 5; d[1] = i + 5; d[2] = i - 1; d[3] = i + 1;
            int k;
            for (k = 0; k < 4; k++) {{
                int to = d[k];
                if (to >= 0 && to < 25 && g_board[to] != side) {{
                    moves[count] = i * 32 + to;
                    count++;
                }}
            }}
        }}
    }}
    return count;
}}

long board_hash(void) {{
    long h = 0;
    int i;
    for (i = 0; i < 25; i++) {{
        h = h * 31 + g_board[i];
    }}
    return h;
}}

int search(int side, int depth, int alpha, int beta) {{
    g_nodes++;
    if (depth == 0) {{
        return side == 1 ? evaluate() : -evaluate();
    }}
    /* Transposition-table probe: the loaded entry pointer is promoted
       and is NULL for most slots (the paper: only 26% of sjeng's
       promotes are valid). */
    long hash = board_hash();
    struct tt_entry *tt = g_tt[(int)(hash & 127)];
    if (tt != NULL && tt->key == hash && tt->depth >= depth) {{
        return tt->score;
    }}
    int moves[64];
    int count = gen_moves(side, moves);
    if (count == 0) {{
        return -9999;
    }}
    int best = -10000;
    int m;
    for (m = 0; m < count; m++) {{
        int from = moves[m] / 32;
        int to = moves[m] % 32;
        int captured = g_board[to];
        g_board[to] = side;
        g_board[from] = 0;
        int score = -search(3 - side, depth - 1, -beta, -alpha);
        g_board[from] = side;
        g_board[to] = captured;
        long *h = &g_history[from * 32 + to];   /* escapes: GT global */
        if (score > best) {{
            best = score;
            *h += depth * depth;
            g_last_history = h;
        }}
        if (best > alpha) {{ alpha = best; }}
        if (alpha >= beta) {{ break; }}
    }}
    if (depth >= 3 && g_last_history != NULL) {{
        /* Occasional reload: a promote hitting the global table. */
        long *hh = g_last_history;
        *hh += 1;
    }}
    /* Store into the transposition table (sparse: depth >= 3 only). */
    if (depth >= 3) {{
        struct tt_entry *e = g_tt[(int)(hash & 127)];
        if (e == NULL) {{
            e = (struct tt_entry *)malloc(sizeof(struct tt_entry));
            g_tt[(int)(hash & 127)] = e;
        }}
        e->key = hash;
        e->score = best;
        e->depth = depth;
    }}
    return best;
}}

int main(void) {{
    init_board();
    long total = 0;
    int game;
    for (game = 0; game < 2; game++) {{
        init_board();
        int ply;
        for (ply = 0; ply < 4; ply++) {{
            total += search(1 + ply % 2, {depth}, -10000, 10000);
        }}
    }}
    printf("sjeng: %d nodes %d\\n", g_nodes, (int)(total & 0xffff));
    return 0;
}}
"""


def _coremark_source(scale: int) -> str:
    # Arena must stay within the local-offset size limit (1008 B) so the
    # wrapped allocator's pointers carry a subobject-index field.
    list_len = 20
    matrix_n = 6
    iters = 3 * scale
    return f"""
/* CoreMark: list processing + matrix multiply + CRC state machine, all
   carved by hand out of a SINGLE malloc'd buffer (the paper: CoreMark
   "performs a single dynamic allocation and builds all data structures
   inside the allocated memory"; its subobject narrowings all fail). */
struct list_node {{
    int value;
    struct list_node *next;
}};

int *g_cursor;     /* holds a pointer to a node's value member */

unsigned int crc16(unsigned int data, unsigned int crc) {{
    int i;
    for (i = 0; i < 16; i++) {{
        int carry = ((data & 1) ^ (crc & 1));
        data = data >> 1;
        crc = crc >> 1;
        if (carry) {{
            crc = crc ^ 0xA001;
        }}
    }}
    return crc;
}}

int main(void) {{
    /* One big arena: list nodes, then two matrices. */
    unsigned long arena_size =
        {list_len} * sizeof(struct list_node)
        + 2 * {matrix_n} * {matrix_n} * sizeof(long) + 64;
    char *arena = (char *)malloc(arena_size);
    struct list_node *nodes = (struct list_node *)arena;
    long *mat_a = (long *)(arena + {list_len} * sizeof(struct list_node));
    long *mat_b = mat_a + {matrix_n} * {matrix_n};

    unsigned int crc = 0xFFFF;
    int iter;
    for (iter = 0; iter < {iters}; iter++) {{
        /* Build and reverse a linked list inside the arena. */
        int i;
        for (i = 0; i < {list_len}; i++) {{
            nodes[i].value = (i * 7 + iter) % 64;
            nodes[i].next = (i + 1 < {list_len}) ? &nodes[i + 1] : NULL;
        }}
        struct list_node *head = &nodes[0];
        struct list_node *rev = NULL;
        while (head != NULL) {{
            struct list_node *next = head->next;
            head->next = rev;
            rev = head;
            head = next;
        }}
        /* Walk (promotes on pointers reloaded from arena memory).  A
           pointer to the node's *value member* round-trips through a
           global: its promote carries a non-zero subobject index, and
           narrowing fails because the arena has no layout table — the
           paper's CoreMark coarsening behaviour. */
        struct list_node *p;
        for (p = rev; p != NULL; p = p->next) {{
            g_cursor = &p->value;
            int *vp = g_cursor;
            crc = crc16(*vp, crc);
        }}
        /* Matrix multiply into mat_b. */
        int r;
        int c;
        for (r = 0; r < {matrix_n}; r++) {{
            for (c = 0; c < {matrix_n}; c++) {{
                mat_a[r * {matrix_n} + c] = (r + c + iter) % 16;
            }}
        }}
        for (r = 0; r < {matrix_n}; r++) {{
            for (c = 0; c < {matrix_n}; c++) {{
                long sum = 0;
                int k;
                for (k = 0; k < {matrix_n}; k++) {{
                    sum += mat_a[r * {matrix_n} + k]
                         * mat_a[k * {matrix_n} + c];
                }}
                mat_b[r * {matrix_n} + c] = sum;
                crc = crc16((unsigned int)(sum & 0xffff), crc);
            }}
        }}
    }}
    printf("coremark: %x\\n", crc);
    return 0;
}}
"""


def _bzip2_source(scale: int) -> str:
    repeats = 3 * scale
    return f"""
/* bzip2: run-length encoding + move-to-front over embedded data, with
   allocations through bzip2's function-pointer hooks (bzalloc). */
char *g_input = "abracadabra_abracadabra_the_quick_brown_fox_jumps_"
                "over_the_lazy_dog_aaaaaaaabbbbbbbbccccccccdddddddd_"
                "mississippi_mississippi_mississippi_bananas_bananas";
unsigned char g_mtf_table[256];      /* escaping globals */
int g_freq[256];

void *(*bzalloc)(unsigned long);
void *default_bzalloc(unsigned long size) {{ return malloc(size); }}

int rle_encode(unsigned char *dst, char *src, int len) {{
    int out = 0;
    int i = 0;
    while (i < len) {{
        int run = 1;
        while (i + run < len && src[i + run] == src[i] && run < 255) {{
            run++;
        }}
        if (run >= 4) {{
            dst[out] = 0xFF;
            dst[out + 1] = (unsigned char)src[i];
            dst[out + 2] = (unsigned char)run;
            out += 3;
        }} else {{
            int k;
            for (k = 0; k < run; k++) {{
                dst[out] = (unsigned char)src[i];
                out++;
            }}
        }}
        i += run;
    }}
    return out;
}}

void tally(int *freq, int symbol) {{
    freq[symbol]++;
}}

int mtf_encode(unsigned char *dst, unsigned char *src, int len) {{
    /* The frequency and MTF tables escape into helpers: both are larger
       than the local-offset limit, so they land on the global table —
       the paper's bzip2 global-table globals. */
    int i;
    for (i = 0; i < 256; i++) {{
        g_mtf_table[i] = (unsigned char)i;
    }}
    for (i = 0; i < len; i++) {{
        unsigned char c = src[i];
        unsigned char *table = g_mtf_table;
        int j = 0;
        while (table[j] != c) {{
            j++;
        }}
        dst[i] = (unsigned char)j;
        while (j > 0) {{
            table[j] = table[j - 1];
            j--;
        }}
        table[0] = c;
        tally(g_freq, dst[i]);
    }}
    return len;
}}

int main(void) {{
    bzalloc = default_bzalloc;
    int in_len = (int)strlen(g_input);
    unsigned long cap = (unsigned long)(in_len * 2 + 16);
    long check = 0;
    int round;
    for (round = 0; round < {repeats}; round++) {{
        unsigned char *rle = (unsigned char *)bzalloc(cap);
        unsigned char *mtf = (unsigned char *)bzalloc(cap);
        int rle_len = rle_encode(rle, g_input, in_len);
        int mtf_len = mtf_encode(mtf, rle, rle_len);
        /* Entropy proxy: weighted sum of MTF ranks. */
        int i;
        long bits = 0;
        for (i = 0; i < mtf_len; i++) {{
            int rank = mtf[i];
            bits += (rank == 0) ? 1 : (rank < 8 ? 4 : 9);
        }}
        check += bits + rle_len;
        free(mtf);
        free(rle);
    }}
    printf("bzip2: %d -> %d\\n", in_len, (int)(check / {repeats}));
    return 0;
}}
"""


WOLFCRYPT_DH = Workload(
    name="wolfcrypt-dh", suite="other",
    description="Diffie-Hellman key agreement over fixed-width bignums.",
    paper_notes="Allocations through wolfSSL's XMALLOC function-pointer "
                "hook: no layout tables deducible; compute-bound, ~1.14x.",
    source_fn=_wolfcrypt_dh_source, expected_output="wolfcrypt-dh:")

SJENG = Workload(
    name="sjeng", suite="other",
    description="Alpha-beta game-tree search with history tables.",
    paper_notes="One large escaping global on the global-table scheme; "
                "only 26% of promotes are valid (NULL/legacy dominate).",
    source_fn=_sjeng_source, expected_output="sjeng:")

COREMARK = Workload(
    name="coremark", suite="other",
    description="List + matrix + CRC kernels inside one malloc'd arena.",
    paper_notes="Single allocation; 29% of promotes are subobject "
                "promotes and ALL narrowings fail (no layout table), "
                "coarsening to object bounds.",
    source_fn=_coremark_source, expected_output="coremark:")

BZIP2 = Workload(
    name="bzip2", suite="other",
    description="Run-length + move-to-front compression.",
    paper_notes="Allocations via function-pointer wrappers (bzalloc); "
                "several large escaping globals on the global table; 50% "
                "subobject promotes failing narrowing in the paper.",
    source_fn=_bzip2_source, expected_output="bzip2:")
