"""Olden graph/list benchmarks: em3d, health, mst.

Paper-reported behaviours preserved:

* **em3d** allocates *arrays* of structs (``malloc(num * sizeof(T))``), so
  almost no heap object carries a layout table (<1 % LT), and the subheap
  allocator must segregate the differing array sizes into separate blocks
  — the paper's worst memory overhead for the subheap version;
* **health** does frequent small alloc/free cycles on list nodes and is
  one of only three programs with subobject promotes (pointers to struct
  members stored and reloaded) — all of which narrow successfully;
* **mst** uses per-vertex hash tables; ~23 % of its promotes bypass (60 %
  legacy from libc-derived pointers, 40 % NULL).
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _em3d_source(scale: int) -> str:
    nodes = 24 * scale
    degree = 4
    iters = 12
    return f"""
/* Olden em3d: electromagnetic wave propagation on a bipartite graph. */
struct node {{
    long value;
    long coeff;
    struct node *next;
    struct node **from_nodes;   /* array alloc: no layout table */
    long from_count;
}};

int g_seed = 99;

int nrand(int m) {{
    g_seed = (g_seed * 1103515245 + 12345) & 0x7fffffff;
    return g_seed % m;
}}

struct node *make_list(int count) {{
    /* Bulk array allocation (malloc(n * sizeof(T))): the paper's em3d
       pattern, which prevents per-object layout tables. */
    struct node *arr = (struct node *)malloc(count * sizeof(struct node));
    struct node *head = NULL;
    int i;
    for (i = 0; i < count; i++) {{
        struct node *n = &arr[i];
        n->value = nrand(1000);
        n->coeff = 1 + nrand(7);
        n->from_count = {degree};
        n->from_nodes = (struct node **)
            malloc({degree} * sizeof(struct node *));
        n->next = head;
        head = n;
    }}
    return head;
}}

struct node *pick(struct node *list, int count, int idx) {{
    struct node *n = list;
    int i;
    for (i = 0; i < idx % count; i++) {{
        n = n->next;
    }}
    return n;
}}

void connect(struct node *dst_list, struct node *src_list, int count) {{
    struct node *n;
    for (n = dst_list; n != NULL; n = n->next) {{
        int i;
        for (i = 0; i < n->from_count; i++) {{
            n->from_nodes[i] = pick(src_list, count, nrand(count));
        }}
    }}
}}

void compute(struct node *list) {{
    struct node *n;
    for (n = list; n != NULL; n = n->next) {{
        long sum = 0;
        int i;
        for (i = 0; i < n->from_count; i++) {{
            struct node *other = n->from_nodes[i];
            sum += other->value * other->coeff;
        }}
        n->value = (n->value + sum / 16) % 1000000;
    }}
}}

int main(void) {{
    struct node *e_nodes = make_list({nodes});
    struct node *h_nodes = make_list({nodes});
    connect(e_nodes, h_nodes, {nodes});
    connect(h_nodes, e_nodes, {nodes});
    int iter;
    long check = 0;
    for (iter = 0; iter < {iters}; iter++) {{
        compute(e_nodes);
        compute(h_nodes);
    }}
    struct node *n;
    for (n = e_nodes; n != NULL; n = n->next) {{
        check += n->value;
    }}
    printf("em3d: %d\\n", (int)(check % 1000000));
    return 0;
}}
"""


def _health_source(scale: int) -> str:
    levels = 3
    steps = 18 * scale
    return f"""
/* Olden health: Colombian health-care simulation.  Villages form a
   4-ary tree; patients flow through waiting lists with frequent
   alloc/free.  Pointers to patient *members* are stored and reloaded,
   producing the paper's (successful) subobject promotes. */
struct patient {{
    int id;
    int time;
    int time_left;
    struct patient *next;
}};

struct village {{
    int id;
    int seed;
    struct patient *waiting;
    struct patient *assess;
    struct village *child[4];
}};

int g_id = 0;
int *g_hot_field;          /* pointer to a patient's member (subobject) */

int vrand(struct village *v, int m) {{
    v->seed = (v->seed * 1103515245 + 12345) & 0x7fffffff;
    return v->seed % m;
}}

struct village *build(int level, int seed) {{
    struct village *v = (struct village *)malloc(sizeof(struct village));
    v->id = g_id++;
    v->seed = seed;
    v->waiting = NULL;
    v->assess = NULL;
    int i;
    for (i = 0; i < 4; i++) {{
        if (level > 1) {{
            v->child[i] = build(level - 1, seed * 7 + i + 1);
        }} else {{
            v->child[i] = NULL;
        }}
    }}
    return v;
}}

struct patient *new_patient(struct village *v) {{
    struct patient *p = (struct patient *)malloc(sizeof(struct patient));
    p->id = g_id++;
    p->time = 0;
    p->time_left = 1 + vrand(v, 3);
    p->next = NULL;
    return p;
}}

void push(struct patient **list, struct patient *p) {{
    p->next = *list;
    *list = p;
}}

struct patient *pop(struct patient **list) {{
    struct patient *p = *list;
    if (p != NULL) {{
        *list = p->next;
    }}
    return p;
}}

long sim(struct village *v) {{
    long treated = 0;
    if (v == NULL) {{
        return 0;
    }}
    int i;
    for (i = 0; i < 4; i++) {{
        treated += sim(v->child[i]);
    }}
    /* New arrivals. */
    if (vrand(v, 10) < 6) {{
        struct patient *p = new_patient(v);
        push(&v->waiting, p);
        g_hot_field = &p->time_left;   /* member pointer escapes */
    }}
    if (g_hot_field != NULL) {{
        treated += (*g_hot_field > 0);   /* reload member ptr: promote+narrow */
        g_hot_field = NULL;              /* consume before the patient can be freed */
    }}
    /* Assess one waiting patient. */
    struct patient *p = pop(&v->waiting);
    if (p != NULL) {{
        p->time++;
        push(&v->assess, p);
    }}
    /* Treat assessed patients. */
    struct patient *prev = NULL;
    p = v->assess;
    while (p != NULL) {{
        struct patient *next = p->next;
        p->time_left--;
        if (p->time_left <= 0) {{
            if (prev == NULL) {{ v->assess = next; }}
            else {{ prev->next = next; }}
            treated++;
            free(p);
        }} else {{
            prev = p;
        }}
        p = next;
    }}
    return treated;
}}

int main(void) {{
    struct village *top = build({levels}, 42);
    long treated = 0;
    int step;
    for (step = 0; step < {steps}; step++) {{
        treated += sim(top);
    }}
    printf("health: %d\\n", (int)treated);
    return 0;
}}
"""


def _mst_source(scale: int) -> str:
    vertices = 24 * scale
    return f"""
/* Olden mst: Prim's minimal spanning tree with per-vertex hash tables. */
struct hash_entry {{
    long key;
    long value;
    struct hash_entry *next;
}};

struct vertex {{
    long mindist;
    struct vertex *next;
    struct hash_entry *table[8];
}};

int g_seed = 31;

int mrand(int m) {{
    g_seed = (g_seed * 1103515245 + 12345) & 0x7fffffff;
    return g_seed % m;
}}

void *halloc(unsigned long size) {{
    return malloc(size);
}}

void hash_insert(struct vertex *v, long key, long value) {{
    int bucket = (int)(key % 8);
    struct hash_entry *e =
        (struct hash_entry *)halloc(sizeof(struct hash_entry));
    e->key = key;
    e->value = value;
    e->next = v->table[bucket];
    v->table[bucket] = e;
}}

long hash_lookup(struct vertex *v, long key) {{
    struct hash_entry *e = v->table[(int)(key % 8)];
    while (e != NULL) {{
        if (e->key == key) {{
            return e->value;
        }}
        e = e->next;
    }}
    return 999999;
}}

struct vertex *make_graph(int count) {{
    struct vertex *head = NULL;
    struct vertex *all[{vertices}];
    int i;
    for (i = 0; i < count; i++) {{
        struct vertex *v = (struct vertex *)halloc(sizeof(struct vertex));
        v->mindist = 999999;
        v->next = head;
        int b;
        for (b = 0; b < 8; b++) {{
            v->table[b] = NULL;
        }}
        head = v;
        all[i] = v;
    }}
    /* Random symmetric edge weights via the hash tables. */
    for (i = 0; i < count; i++) {{
        int j;
        for (j = 0; j < i; j++) {{
            long w = 1 + mrand(1000);
            hash_insert(all[i], (long)j, w);
            hash_insert(all[j], (long)i, w);
        }}
    }}
    return head;
}}

int main(void) {{
    struct vertex *graph = make_graph({vertices});
    /* Prim over vertex indices (list position = index). */
    long total = 0;
    struct vertex *v;
    int in_tree[{vertices}];
    int i;
    for (i = 0; i < {vertices}; i++) {{
        in_tree[i] = 0;
    }}
    in_tree[0] = 1;
    int added = 1;
    while (added < {vertices}) {{
        long best = 999999;
        int best_idx = -1;
        int idx = 0;
        for (v = graph; v != NULL; v = v->next) {{
            int vi = {vertices} - 1 - idx;
            if (!in_tree[vi]) {{
                int k;
                for (k = 0; k < {vertices}; k++) {{
                    if (in_tree[k]) {{
                        long w = hash_lookup(v, (long)k);
                        if (w < best) {{
                            best = w;
                            best_idx = vi;
                        }}
                    }}
                }}
            }}
            idx++;
        }}
        in_tree[best_idx] = 1;
        total += best;
        added++;
    }}
    printf("mst: %d\\n", (int)total);
    return 0;
}}
"""


EM3D = Workload(
    name="em3d", suite="olden",
    description="Electromagnetic wave propagation on a bipartite graph.",
    paper_notes="Array-of-struct heap allocations (malloc(n*sizeof(T))): "
                "<1% layout tables; worst subheap memory overhead because "
                "different array sizes land in different blocks.",
    source_fn=_em3d_source, expected_output="em3d:")

HEALTH = Workload(
    name="health", suite="olden",
    description="Hierarchical health-care queueing simulation.",
    paper_notes="Frequent small alloc/free; one of three programs with "
                "subobject promotes, all narrowing successfully; wrapped "
                "version suffers metadata cache misses (worst overhead).",
    source_fn=_health_source, expected_output="health:")

MST = Workload(
    name="mst", suite="olden",
    description="Minimal spanning tree with per-vertex hash tables.",
    paper_notes="838 heap objects; ~23% of promotes bypass lookup (60% "
                "legacy pointers, 40% NULL).",
    source_fn=_mst_source, expected_output="mst:")
