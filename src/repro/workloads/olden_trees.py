"""Olden tree benchmarks: treeadd, bisort, perimeter.

Paper-reported behaviours preserved here:

* all three allocate through *wrapper functions* (Olden's ``local_malloc``
  style), so the compiler cannot deduce types and **no layout tables** are
  generated for their heap objects (0 % LT in Table 4);
* treeadd/perimeter are allocation-dominated and never free — the subheap
  allocator's cheap pool path makes their instrumented builds *faster*
  than baseline (0.61x / 0.80x dynamic instructions in Table 4);
* bisort's recursive traversals promote many pointers that turn out NULL
  (the paper: "almost all promote bypassing metadata lookup encountered a
  NULL pointer").
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _treeadd_source(scale: int) -> str:
    levels = 9 + scale  # 2^levels - 1 nodes
    return f"""
/* Olden treeadd: recursive sum over a balanced binary tree. */
struct tree {{
    int val;
    struct tree *left;
    struct tree *right;
}};

void *local_malloc(unsigned long size) {{
    /* Olden-style allocation wrapper: hides the type from the compiler,
       so heap objects carry no layout table. */
    return malloc(size);
}}

struct tree *build(int level) {{
    struct tree *t = (struct tree *)local_malloc(sizeof(struct tree));
    t->val = 1;
    if (level <= 1) {{
        t->left = NULL;
        t->right = NULL;
    }} else {{
        t->left = build(level - 1);
        t->right = build(level - 1);
    }}
    return t;
}}

int tree_add(struct tree *t) {{
    if (t == NULL) {{
        return 0;
    }}
    return t->val + tree_add(t->left) + tree_add(t->right);
}}

int main(void) {{
    struct tree *root = build({levels});
    int total = tree_add(root);
    printf("treeadd: %d\\n", total);
    return 0;
}}
"""


def _bisort_source(scale: int) -> str:
    levels = 7 + scale
    return f"""
/* Olden bisort: bitonic sort over a balanced binary tree. */
struct node {{
    int value;
    struct node *left;
    struct node *right;
}};

int g_seed = 12345;

int next_value(void) {{
    g_seed = (g_seed * 1103515245 + 12345) & 0x7fffffff;
    return g_seed % 100000;
}}

void *node_alloc(unsigned long size) {{
    return malloc(size);
}}

struct node *build(int level) {{
    struct node *n;
    if (level == 0) {{
        return NULL;
    }}
    n = (struct node *)node_alloc(sizeof(struct node));
    n->value = next_value();
    n->left = build(level - 1);
    n->right = build(level - 1);
    return n;
}}

void swap_values(struct node *a, struct node *b) {{
    int t = a->value;
    a->value = b->value;
    b->value = t;
}}

/* Compare-and-swap pass in the given direction over mirrored subtrees. */
void bimerge(struct node *a, struct node *b, int up) {{
    if (a == NULL || b == NULL) {{
        return;
    }}
    if ((up && a->value > b->value) || (!up && a->value < b->value)) {{
        swap_values(a, b);
    }}
    bimerge(a->left, b->left, up);
    bimerge(a->right, b->right, up);
}}

void bisort(struct node *t, int up) {{
    if (t == NULL) {{
        return;
    }}
    bisort(t->left, up);
    bisort(t->right, !up);
    bimerge(t->left, t->right, up);
    if (t->left != NULL) {{
        if ((up && t->value < t->left->value)
                || (!up && t->value > t->left->value)) {{
            swap_values(t, t->left);
        }}
    }}
}}

long checksum(struct node *t) {{
    if (t == NULL) {{
        return 0;
    }}
    return t->value + 3 * checksum(t->left) + 7 * checksum(t->right);
}}

int main(void) {{
    struct node *root = build({levels});
    bisort(root, 1);
    bisort(root, 0);
    printf("bisort: %d\\n", (int)(checksum(root) & 0xffffff));
    return 0;
}}
"""


def _perimeter_source(scale: int) -> str:
    depth = 4 + scale
    return f"""
/* Olden perimeter: build a quadtree over an image, sum the perimeter of
   black regions.  Allocation-heavy, never frees. */
struct quad {{
    int color;          /* 0 white, 1 black, 2 grey */
    int level;
    struct quad *nw;
    struct quad *ne;
    struct quad *sw;
    struct quad *se;
}};

int g_seed = 7;

int pattern(int x, int y, int size) {{
    /* Deterministic "image": black inside a disc. */
    int cx = x + size / 2 - 32;
    int cy = y + size / 2 - 32;
    return cx * cx + cy * cy < 900;
}}

void *qalloc(unsigned long size) {{
    return malloc(size);
}}

struct quad *build(int x, int y, int size, int level) {{
    struct quad *q = (struct quad *)qalloc(sizeof(struct quad));
    q->level = level;
    if (level == 0) {{
        q->color = pattern(x, y, size);
        q->nw = NULL; q->ne = NULL; q->sw = NULL; q->se = NULL;
        return q;
    }}
    q->nw = build(x, y, size / 2, level - 1);
    q->ne = build(x + size / 2, y, size / 2, level - 1);
    q->sw = build(x, y + size / 2, size / 2, level - 1);
    q->se = build(x + size / 2, y + size / 2, size / 2, level - 1);
    if (q->nw->color != 2 && q->nw->color == q->ne->color
            && q->ne->color == q->sw->color
            && q->sw->color == q->se->color) {{
        q->color = q->nw->color;
    }} else {{
        q->color = 2;
    }}
    return q;
}}

int count_black(struct quad *q, int size) {{
    if (q == NULL) {{
        return 0;
    }}
    if (q->color == 1) {{
        return 4 * size;   /* contribution proxy for a solid block */
    }}
    if (q->color == 0) {{
        return 0;
    }}
    return count_black(q->nw, size / 2) + count_black(q->ne, size / 2)
         + count_black(q->sw, size / 2) + count_black(q->se, size / 2);
}}

int main(void) {{
    struct quad *root = build(0, 0, 64, {depth});
    int perimeter = count_black(root, 64);
    printf("perimeter: %d\\n", perimeter);
    return 0;
}}
"""


TREEADD = Workload(
    name="treeadd", suite="olden",
    description="Recursive sum over a balanced binary tree.",
    paper_notes="2.1e6 heap objects via allocation wrapper (no layout "
                "tables); subheap version runs at 0.61x baseline "
                "instructions thanks to the pool allocator.",
    source_fn=_treeadd_source, expected_output="treeadd:")

BISORT = Workload(
    name="bisort", suite="olden",
    description="Bitonic sort over a binary tree.",
    paper_notes="1.31e5 heap objects, no layout tables; ~45% of promotes "
                "bypass on NULL pointers (leaf children).",
    source_fn=_bisort_source, expected_output="bisort:")

PERIMETER = Workload(
    name="perimeter", suite="olden",
    description="Quadtree perimeter computation.",
    paper_notes="1.4e6 heap objects, allocation-dominated, no frees; "
                "subheap version at 0.80x baseline instructions.",
    source_fn=_perimeter_source, expected_output="perimeter:")
