"""Olden compute benchmarks: bh, power, tsp, voronoi.

Paper-reported behaviours preserved:

* **bh** is the only program with a huge count of *local* object
  registrations (1.24e7 in Table 4): its force-computation loop passes
  temporary vector structs by address, so every iteration registers and
  deregisters stack objects;
* **power** mixes direct typed allocations (9 % LT) with wrapper
  allocations, and has negligible overhead (1.00x);
* **tsp** builds a spatial tree and constructs a tour — integer-scaled
  coordinates replace the original's doubles (see DESIGN.md);
* **voronoi** has the lowest valid-promote ratio (44 %): most of its
  promotes see *legacy* pointers, modelled here with interned
  string-literal pointers stored and reloaded through globals.
"""

from __future__ import annotations

from repro.workloads.base import Workload


def _bh_source(scale: int) -> str:
    bodies = 12 * scale
    steps = 6
    return f"""
/* Olden bh (Barnes-Hut): gravitational n-body with temporary vector
   structs registered on the stack in the hot loop. */
struct vec {{
    long x;
    long y;
    long z;
}};

struct body {{
    struct vec pos;
    struct vec vel;
    long mass;
}};

int g_seed = 5;

long brand(long m) {{
    g_seed = (g_seed * 1103515245 + 12345) & 0x7fffffff;
    return g_seed % m;
}}

void vec_sub(struct vec *out, struct vec *a, struct vec *b) {{
    out->x = a->x - b->x;
    out->y = a->y - b->y;
    out->z = a->z - b->z;
}}

long vec_norm2(struct vec *a) {{
    return a->x * a->x + a->y * a->y + a->z * a->z;
}}

void vec_scale_add(struct vec *acc, struct vec *d, long num, long den) {{
    acc->x += d->x * num / den;
    acc->y += d->y * num / den;
    acc->z += d->z * num / den;
}}

void compute_force(struct body *target, struct body *other,
                   struct vec *acc) {{
    struct vec delta;              /* address-taken local: registered */
    vec_sub(&delta, &other->pos, &target->pos);
    long dist2 = vec_norm2(&delta) + 16;
    vec_scale_add(acc, &delta, other->mass, dist2);
}}

void *cell_alloc(unsigned long size) {{
    return malloc(size);
}}

int main(void) {{
    /* Bodies: one typed allocation each (layout tables); the pointer
       array holding them is a wrapper allocation (no table), giving the
       paper's mixed heap LT ratio. */
    struct body **order = (struct body **)
        cell_alloc({bodies} * sizeof(struct body *));
    int i;
    for (i = 0; i < {bodies}; i++) {{
        struct body *b = (struct body *)malloc(sizeof(struct body));
        b->pos.x = brand(1000);
        b->pos.y = brand(1000);
        b->pos.z = brand(1000);
        b->vel.x = 0;
        b->vel.y = 0;
        b->vel.z = 0;
        b->mass = 10 + brand(90);
        order[i] = b;
    }}
    int step;
    for (step = 0; step < {steps}; step++) {{
        for (i = 0; i < {bodies}; i++) {{
            struct vec acc;        /* address-taken local: registered */
            acc.x = 0; acc.y = 0; acc.z = 0;
            struct body *self = order[i];   /* reload: promote */
            int j;
            for (j = 0; j < {bodies}; j++) {{
                if (j != i) {{
                    compute_force(self, order[j], &acc);
                }}
            }}
            self->vel.x += acc.x / 100;
            self->vel.y += acc.y / 100;
            self->vel.z += acc.z / 100;
        }}
        for (i = 0; i < {bodies}; i++) {{
            struct body *b = order[i];
            b->pos.x += b->vel.x / 10;
            b->pos.y += b->vel.y / 10;
            b->pos.z += b->vel.z / 10;
        }}
    }}
    long check = 0;
    for (i = 0; i < {bodies}; i++) {{
        struct body *b = order[i];
        check += b->pos.x + b->pos.y + b->pos.z;
    }}
    printf("bh: %d\\n", (int)(check & 0xffffff));
    return 0;
}}
"""


def _power_source(scale: int) -> str:
    laterals = 4
    branches = 4
    leaves = 5
    iters = 6 * scale
    return f"""
/* Olden power: hierarchical power-system pricing optimisation. */
struct leaf {{
    long demand;
    long price;
}};

struct branch {{
    struct leaf leaves[{leaves}];
    long current;
    struct branch *next;
}};

struct lateral {{
    struct branch *branches;
    long current;
    struct lateral *next;
}};

void *power_alloc(unsigned long size) {{
    return malloc(size);
}}

struct lateral *build(void) {{
    struct lateral *first = NULL;
    int l;
    for (l = 0; l < {laterals}; l++) {{
        /* Direct typed allocation: layout table generated. */
        struct lateral *lat = (struct lateral *)
            malloc(sizeof(struct lateral));
        lat->current = 0;
        lat->branches = NULL;
        int b;
        for (b = 0; b < {branches}; b++) {{
            /* Wrapper allocation: no layout table. */
            struct branch *br = (struct branch *)
                power_alloc(sizeof(struct branch));
            br->current = 0;
            int i;
            for (i = 0; i < {leaves}; i++) {{
                br->leaves[i].demand = 10 + (l * 7 + b * 3 + i) % 50;
                br->leaves[i].price = 100;
            }}
            br->next = lat->branches;
            lat->branches = br;
        }}
        lat->next = first;
        first = lat;
    }}
    return first;
}}

long optimize(struct lateral *root) {{
    long total = 0;
    struct lateral *lat;
    for (lat = root; lat != NULL; lat = lat->next) {{
        long lat_current = 0;
        struct branch *br;
        for (br = lat->branches; br != NULL; br = br->next) {{
            long br_current = 0;
            int i;
            for (i = 0; i < {leaves}; i++) {{
                struct leaf *lf = &br->leaves[i];
                long draw = lf->demand * 1000 / lf->price;
                br_current += draw;
                /* Feedback: price follows demand. */
                lf->price += (draw - 10) / 4;
                if (lf->price < 50) {{ lf->price = 50; }}
            }}
            br->current = br_current;
            lat_current += br_current;
        }}
        lat->current = lat_current;
        total += lat_current;
    }}
    return total;
}}

int main(void) {{
    struct lateral *root = build();
    long total = 0;
    int it;
    for (it = 0; it < {iters}; it++) {{
        total = optimize(root);
    }}
    printf("power: %d\\n", (int)total);
    return 0;
}}
"""


def _tsp_source(scale: int) -> str:
    points = 32 * scale
    return f"""
/* Olden tsp: build a binary spatial tree over city points, then a
   nearest-neighbour tour.  Integer-scaled coordinates. */
struct city {{
    long x;
    long y;
    struct city *left;
    struct city *right;
    struct city *tour_next;
    int visited;
}};

int g_seed = 17;

long trand(long m) {{
    g_seed = (g_seed * 1103515245 + 12345) & 0x7fffffff;
    return g_seed % m;
}}

struct city *insert(struct city *root, struct city *c, int axis) {{
    if (root == NULL) {{
        return c;
    }}
    long key = axis ? c->x : c->x + c->y;
    long root_key = axis ? root->x : root->x + root->y;
    if (key < root_key) {{
        root->left = insert(root->left, c, !axis);
    }} else {{
        root->right = insert(root->right, c, !axis);
    }}
    return root;
}}

long dist2(struct city *a, struct city *b) {{
    long dx = a->x - b->x;
    long dy = a->y - b->y;
    return dx * dx + dy * dy;
}}

/* Find unvisited city nearest to `from` by walking the whole tree. */
struct city *nearest(struct city *root, struct city *from,
                     struct city *best) {{
    if (root == NULL) {{
        return best;
    }}
    if (!root->visited && root != from) {{
        if (best == NULL || dist2(root, from) < dist2(best, from)) {{
            best = root;
        }}
    }}
    best = nearest(root->left, from, best);
    best = nearest(root->right, from, best);
    return best;
}}

int main(void) {{
    struct city *root = NULL;
    struct city *first = NULL;
    int i;
    for (i = 0; i < {points}; i++) {{
        struct city *c = (struct city *)malloc(sizeof(struct city));
        c->x = trand(10000);
        c->y = trand(10000);
        c->left = NULL;
        c->right = NULL;
        c->tour_next = NULL;
        c->visited = 0;
        root = insert(root, c, 0);
        if (first == NULL) {{
            first = c;
        }}
    }}
    /* Greedy tour. */
    struct city *current = first;
    current->visited = 1;
    long tour_len = 0;
    for (i = 1; i < {points}; i++) {{
        struct city *next = nearest(root, current, NULL);
        if (next == NULL) {{
            break;
        }}
        next->visited = 1;
        current->tour_next = next;
        tour_len += isqrt(dist2(current, next));
        current = next;
    }}
    tour_len += isqrt(dist2(current, first));
    printf("tsp: %d\\n", (int)tour_len);
    return 0;
}}
"""


def _voronoi_source(scale: int) -> str:
    points = 20 * scale
    return f"""
/* Olden voronoi: Delaunay-flavoured neighbour computation over random
   sites.  Site labels are interned string literals: the label pointers
   stored and reloaded through memory are *legacy* pointers, giving this
   program the paper's lowest valid-promote ratio. */
struct site {{
    long x;
    long y;
    char *label;          /* legacy (string-literal) pointer */
    struct site *next;
    struct site *nn;      /* nearest neighbour */
}};

char *g_labels[8];
int g_seed = 23;

long vrand(long m) {{
    g_seed = (g_seed * 1103515245 + 12345) & 0x7fffffff;
    return g_seed % m;
}}

void init_labels(void) {{
    g_labels[0] = "alpha";   g_labels[1] = "beta";
    g_labels[2] = "gamma";   g_labels[3] = "delta";
    g_labels[4] = "epsilon"; g_labels[5] = "zeta";
    g_labels[6] = "eta";     g_labels[7] = "theta";
}}

long dist2(struct site *a, struct site *b) {{
    long dx = a->x - b->x;
    long dy = a->y - b->y;
    return dx * dx + dy * dy;
}}

int main(void) {{
    init_labels();
    struct site *sites = NULL;
    int i;
    for (i = 0; i < {points}; i++) {{
        struct site *s = (struct site *)malloc(sizeof(struct site));
        s->x = vrand(1 << 16);
        s->y = vrand(1 << 16);
        s->label = g_labels[i % 8];
        s->nn = NULL;
        s->next = sites;
        sites = s;
    }}
    /* All-pairs nearest neighbour (the Delaunay kernel's hot loop). */
    struct site *a;
    for (a = sites; a != NULL; a = a->next) {{
        long best = 0x7fffffffffff;
        struct site *b;
        for (b = sites; b != NULL; b = b->next) {{
            if (b != a) {{
                char *la = a->label;    /* legacy pointer: promote bypass */
                char *lb = b->label;
                long d = dist2(a, b) + (la == lb);
                if (d < best) {{
                    best = d;
                    a->nn = b;
                }}
            }}
        }}
    }}
    /* Checksum mixes label characters (legacy pointer dereferences). */
    long check = 0;
    for (a = sites; a != NULL; a = a->next) {{
        char *l = a->label;
        check += l[0] + strlen(l) + (dist2(a, a->nn) & 0xffff);
    }}
    printf("voronoi: %d\\n", (int)(check & 0xffffff));
    return 0;
}}
"""


BH = Workload(
    name="bh", suite="olden",
    description="Barnes-Hut style n-body force computation.",
    paper_notes="1.24e7 local objects instrumented (temporary vectors in "
                "the hot loop), all with layout tables; heap 33% LT.",
    source_fn=_bh_source, expected_output="bh:")

POWER = Workload(
    name="power", suite="olden",
    description="Hierarchical power-system pricing optimisation.",
    paper_notes="9% of heap objects with layout tables (mixed direct and "
                "wrapper allocation); ~1.00x overhead in both versions.",
    source_fn=_power_source, expected_output="power:")

TSP = Workload(
    name="tsp", suite="olden",
    description="Nearest-neighbour travelling-salesman tour over a "
                "spatial tree.",
    paper_notes="1.31e5 heap objects, no layout tables in the paper "
                "(doubles replaced by scaled integers here).",
    source_fn=_tsp_source, expected_output="tsp:")

VORONOI = Workload(
    name="voronoi", suite="olden",
    description="Nearest-neighbour (Voronoi/Delaunay kernel) over random "
                "sites with string labels.",
    paper_notes="Lowest valid-promote ratio (44%): most promotes see "
                "legacy pointers (modelled by string-literal labels).",
    source_fn=_voronoi_source, expected_output="voronoi:")
