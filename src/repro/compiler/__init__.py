"""Mini-C compiler: lowering, layout-table generation, IFP instrumentation.

The compiler plays the role of the paper's modified Clang/LLVM.  It lowers
the typed AST (:mod:`repro.lang`) to a register-based IR (:mod:`.ir`),
optionally weaving in In-Fat Pointer instrumentation:

* object-metadata registration for address-taken locals and globals
  (local-offset scheme when the object fits, global-table fallback);
* layout-table generation per struct type (:mod:`.layout_gen`);
* ``promote`` insertion for pointers whose bounds cannot be statically
  determined (loads of pointer values, legacy-call results);
* tag maintenance (``ifpadd``/``ifpidx``) on pointer arithmetic;
* static bounds narrowing (``ifpbnd``) for statically-known subobjects;
* allocator-call rewriting to the IFP runtime's allocators.
"""

from repro.compiler.ir import (
    Op, Instr, IRFunction, IRProgram, GlobalObject,
)
from repro.compiler.options import CompilerOptions
from repro.compiler.compile import compile_program, compile_source

__all__ = [
    "Op", "Instr", "IRFunction", "IRProgram", "GlobalObject",
    "CompilerOptions", "compile_program", "compile_source",
]
