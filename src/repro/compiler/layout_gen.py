"""Layout-table generation from mini-C types (paper Section 3.4).

The table flattens the subobject tree in DFS preorder, which gives the
key property the instrumentation relies on: the entries for a type T's
subtree have the *same relative shape* wherever T occurs.  The compiler
can therefore maintain the pointer tag's subobject index with constant
``ifpidx`` deltas computed purely from static types:

* descending from a struct-context entry into member ``m``:
  ``delta = 1 + sum(subtree_entries(f) for fields f before m)``;
* descending from a whole-object entry into a top-level array: ``+1``;
* array indexing never changes the index (all elements share the array's
  entry — the property that makes pointer loops instrumentation-free).

Array-of-struct members get one entry for the array (``size`` = element
size) whose children are the element's fields, exactly as in the paper's
Figure 9.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ifp.layout import LayoutEntry, LayoutTable
from repro.lang.ctypes import ArrayType, CType, StructType, UnionType


def subtree_entries(ctype: CType) -> int:
    """Number of layout-table entries a member of this type contributes."""
    return 1 + sum(subtree_entries(child_type)
                   for _name, _base, _bound, _size, child_type
                   in _children(ctype))


def _children(ctype: CType) -> List[Tuple[str, int, int, int, CType]]:
    """Child sub-entries of a subobject of type ``ctype``.

    Each child is ``(name, base, bound, elem_size, child_type)`` with
    offsets relative to one *element* of ``ctype`` (for arrays) or to the
    struct itself.
    """
    if isinstance(ctype, UnionType):
        # Union members overlap: there is no subobject tree below a
        # union, so narrowing stops at the union's own bounds.
        return []
    if isinstance(ctype, StructType):
        out = []
        for field in ctype.fields:
            elem_size = (field.type.element.size
                         if isinstance(field.type, ArrayType)
                         else field.type.size)
            out.append((field.name, field.offset,
                        field.offset + field.type.size, elem_size,
                        field.type))
        return out
    if isinstance(ctype, ArrayType):
        element = ctype.element
        if isinstance(element, StructType):
            return _children(element)
        if isinstance(element, ArrayType):
            inner_elem = (element.element.size
                          if not isinstance(element.element, ArrayType)
                          else element.element.element.size)
            return [("[]", 0, element.size,
                     element.element.size, element)]
        return []
    return []


def build_layout_table(ctype: CType, type_name: str,
                       max_entries: int) -> Optional[LayoutTable]:
    """Build the layout table for an object of type ``ctype``.

    Returns ``None`` when the type has no subobjects worth a table (plain
    scalars and scalar arrays) or the flattened tree exceeds
    ``max_entries`` (the scheme's subobject-index width).
    """
    if ctype.size <= 0:
        return None
    top_children = _children(ctype)
    if isinstance(ctype, ArrayType) and not isinstance(
            ctype.element, (StructType, ArrayType)):
        return None  # scalar array: object bounds are already exact
    if not top_children and not isinstance(ctype, ArrayType):
        return None

    entries: List[LayoutEntry] = [
        LayoutEntry(0, 0, ctype.size, ctype.size)]
    names: List[str] = [type_name]

    def emit(parent_index: int, prefix: str, children) -> bool:
        for name, base, bound, elem_size, child_type in children:
            index = len(entries)
            if index >= max_entries:
                return False
            entries.append(LayoutEntry(parent_index, base, bound, elem_size))
            suffix = "[]" if isinstance(child_type, ArrayType) else ""
            names.append(f"{prefix}.{name}{suffix}")
            if not emit(index, f"{prefix}.{name}{suffix}",
                        _children(child_type)):
                return False
        return True

    if isinstance(ctype, ArrayType):
        # Whole-object entry 0 plus one entry for the top-level array.
        elem = ctype.element
        elem_size = elem.size
        if len(entries) >= max_entries:
            return None
        entries.append(LayoutEntry(0, 0, ctype.size, elem_size))
        names.append(f"{type_name}[]")
        if not emit(1, f"{type_name}[]", _children(ctype)):
            return None
    else:
        if not emit(0, type_name, top_children):
            return None
    if len(entries) <= 1:
        return None
    return LayoutTable(type_name, entries, names)


def member_delta(struct_type: StructType, member_name: str) -> int:
    """``ifpidx`` delta for descending into ``member_name`` from an entry
    whose children are ``struct_type``'s fields (the struct's own entry or
    an array-of-struct entry)."""
    if isinstance(struct_type, UnionType):
        return 0  # union members share the union's own entry
    delta = 1
    for field in struct_type.fields:
        if field.name == member_name:
            return delta
        delta += subtree_entries(field.type)
    raise KeyError(member_name)


class LayoutTableRegistry:
    """Interns one layout table per type for a compilation.

    Mirrors the paper's sharing: "all objects of the same type can share a
    single table".
    """

    def __init__(self, max_entries: int):
        self.max_entries = max_entries
        self.tables: Dict[str, LayoutTable] = {}
        self._failed: set = set()

    def symbol_for(self, ctype: CType) -> str:
        """Return the image symbol of the type's table, or '' if none."""
        name = _type_key(ctype)
        if name in self._failed:
            return ""
        symbol = f"__IFP_LT_{name}"
        if symbol not in self.tables:
            table = build_layout_table(ctype, name, self.max_entries)
            if table is None:
                self._failed.add(name)
                return ""
            self.tables[symbol] = table
        return symbol


def _type_key(ctype: CType) -> str:
    if isinstance(ctype, StructType):
        return ctype.name
    if isinstance(ctype, ArrayType):
        return f"{_type_key(ctype.element)}_x{ctype.count}"
    return str(ctype).replace(" ", "_").replace("*", "p")
