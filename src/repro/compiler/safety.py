"""Static safety analysis: which objects need metadata registration.

The paper's compiler "identifies all pointers whose safety cannot be
statically determined" and instruments the *objects* those pointers may
reference.  The reproduction uses the standard conservative criterion: an
object needs registration exactly when its address *escapes* the
statically-visible access paths — i.e. a pointer to it (or into it) is
materialised as a first-class value:

* ``&x`` anywhere (argument, assignment, arithmetic, ...);
* an array (or struct member array) decaying to a pointer value;
* a global/local aggregate passed to any call.

Direct accesses by name (``x = 1``, ``arr[i]``, ``s.f.g``) never force
registration: the compiler checks them against statically-known bounds
(``ifpbnd``) without metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.lang import astnodes as ast
from repro.lang.sema import Program


@dataclass
class EscapeInfo:
    """Escaping (address-taken) objects, per function and globally."""

    locals_by_function: Dict[str, Set[str]] = field(default_factory=dict)
    globals_escaping: Set[str] = field(default_factory=set)

    def local_escapes(self, function: str, name: str) -> bool:
        return name in self.locals_by_function.get(function, set())


def analyze_escapes(program: Program) -> EscapeInfo:
    """Run the escape analysis over every function body."""
    info = EscapeInfo()
    for name in program.function_order:
        func = program.functions[name]
        collector = _Collector(program)
        collector.visit_stmt(func.body)
        info.locals_by_function[name] = collector.locals_taken
        info.globals_escaping |= collector.globals_taken
    return info


class _Collector:
    def __init__(self, program: Program):
        self.program = program
        self.locals_taken: Set[str] = set()
        self.globals_taken: Set[str] = set()

    # -- escape events -----------------------------------------------------

    def _mark_root(self, expr: ast.Expr) -> None:
        """Mark the root object of an access path as escaping."""
        node = expr
        while True:
            if isinstance(node, ast.Member):
                if node.arrow:
                    self.visit_expr(node.base)
                    return  # rooted at a pointer, not a named object
                node = node.base
            elif isinstance(node, ast.Index):
                self.visit_expr(node.index)
                base_type = node.base.ctype
                if base_type is not None and base_type.is_array:
                    node = node.base
                else:
                    self.visit_expr(node.base)
                    return
            elif isinstance(node, ast.Deref):
                self.visit_expr(node.pointer)
                return
            elif isinstance(node, ast.Ident):
                if node.binding in ("local", "param"):
                    self.locals_taken.add(node.name)
                elif node.binding == "global":
                    self.globals_taken.add(node.name)
                return
            else:
                self.visit_expr(node)
                return

    def _value_use(self, expr: ast.Expr) -> None:
        """Visit an expression used as a *value*; array-typed access paths
        decay to pointers here, which is an escape of the root object."""
        if expr is None:
            return
        if expr.ctype is not None and expr.ctype.is_array:
            self._mark_root(expr)
            return
        self.visit_expr(expr)

    # -- traversal ------------------------------------------------------------

    def visit_expr(self, expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.AddressOf):
            if isinstance(expr.operand, ast.Ident) \
                    and expr.operand.binding == "function":
                return
            self._mark_root(expr.operand)
        elif isinstance(expr, (ast.IntLit, ast.StrLit, ast.SizeofType)):
            pass
        elif isinstance(expr, ast.Ident):
            pass  # plain name read; decay handled by _value_use
        elif isinstance(expr, ast.Unary):
            self._value_use(expr.operand)
        elif isinstance(expr, ast.Deref):
            self._value_use(expr.pointer)
        elif isinstance(expr, ast.Binary):
            self._value_use(expr.left)
            self._value_use(expr.right)
        elif isinstance(expr, ast.Conditional):
            self._value_use(expr.cond)
            self._value_use(expr.then)
            self._value_use(expr.otherwise)
        elif isinstance(expr, ast.Assign):
            self.visit_expr(expr.target)
            self._value_use(expr.value)
        elif isinstance(expr, ast.IncDec):
            self.visit_expr(expr.target)
        elif isinstance(expr, ast.Call):
            if not (isinstance(expr.func, ast.Ident)
                    and expr.func.binding == "function"):
                self._value_use(expr.func)
            for arg in expr.args:
                self._value_use(arg)
        elif isinstance(expr, ast.Index):
            self.visit_expr(expr.base)
            self._value_use(expr.index)
        elif isinstance(expr, ast.Member):
            self.visit_expr(expr.base)
        elif isinstance(expr, ast.Cast):
            self._value_use(expr.operand)
        elif isinstance(expr, ast.SizeofExpr):
            pass  # unevaluated
        else:  # pragma: no cover
            raise TypeError(f"unknown expression {type(expr).__name__}")

    def visit_stmt(self, stmt: Optional[ast.Stmt]) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self.visit_stmt(inner)
        elif isinstance(stmt, ast.VarDecl):
            self._value_use(stmt.init)
            for item in stmt.init_list or []:
                self._value_use(item)
        elif isinstance(stmt, ast.ExprStmt):
            self.visit_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._value_use(stmt.cond)
            self.visit_stmt(stmt.then)
            self.visit_stmt(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self._value_use(stmt.cond)
            self.visit_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            self.visit_stmt(stmt.init)
            self._value_use(stmt.cond)
            self._value_use(stmt.step)
            self.visit_stmt(stmt.body)
        elif isinstance(stmt, ast.Switch):
            self._value_use(stmt.scrutinee)
            for case in stmt.cases:
                for inner in case.body:
                    self.visit_stmt(inner)
        elif isinstance(stmt, ast.Return):
            self._value_use(stmt.value)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        else:  # pragma: no cover
            raise TypeError(f"unknown statement {type(stmt).__name__}")
