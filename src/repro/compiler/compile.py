"""Compilation driver: typed program → IR program image.

Responsibilities beyond per-function lowering:

* building the global-object table (init bytes for constant initialisers,
  a synthetic ``__init_globals`` function for address-valued ones — the
  moral equivalent of C runtime init);
* reserving appended-metadata space for escaping globals that will be
  registered under the local-offset scheme;
* serialising the interned layout tables into image objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CompileError
from repro.compiler.codegen import FunctionCodegen
from repro.compiler.ir import (
    GlobalObject, IRFunction, IRProgram, LayoutTableObject,
    assign_bin_codes,
)
from repro.compiler.layout_gen import LayoutTableRegistry
from repro.compiler.options import CompilerOptions
from repro.compiler.safety import analyze_escapes
from repro.ifp.schemes.local_offset import METADATA_BYTES, align_up
from repro.lang import astnodes as ast
from repro.lang.ctypes import IntType, PointerType, VOID
from repro.lang.parser import parse
from repro.lang.sema import Program, analyze


def compile_source(source: str,
                   options: CompilerOptions = CompilerOptions()) -> IRProgram:
    """Front door: mini-C source text → executable IR program."""
    return compile_program(analyze(parse(source)), options)


def compile_program(program: Program,
                    options: CompilerOptions = CompilerOptions()) -> IRProgram:
    options.ifp.validate()
    registry = LayoutTableRegistry(
        max_entries=options.ifp.subheap_max_layout_entries)
    escapes = analyze_escapes(program)

    functions: Dict[str, IRFunction] = {}
    for name in program.function_order:
        func = program.functions[name]
        codegen = FunctionCodegen(
            program, func, options, registry,
            escapes.locals_by_function.get(name, set()),
            escapes.globals_escaping)
        functions[name] = codegen.run()

    globals_out: Dict[str, GlobalObject] = {}
    runtime_inits: List[ast.Stmt] = []
    for gname, gvar in program.globals.items():
        init_bytes = _constant_init_bytes(gvar)
        if init_bytes is None:
            runtime_inits.append(_runtime_init_stmt(gvar))
            init_bytes = b""
        needs_reg = options.instrument and gname in escapes.globals_escaping
        layout_symbol = ""
        reserve = 0
        align = max(gvar.var_type.align, 1)
        if needs_reg:
            if options.narrowing:
                layout_symbol = registry.symbol_for(gvar.var_type)
            if gvar.var_type.size <= options.ifp.local_max_object:
                align = max(align, options.ifp.granule)
                reserve = (align_up(gvar.var_type.size, options.ifp.granule)
                           - gvar.var_type.size + METADATA_BYTES)
        globals_out[gname] = GlobalObject(
            name=gname, size=gvar.var_type.size, align=align,
            init=init_bytes, needs_registration=needs_reg,
            layout_symbol=layout_symbol, metadata_reserve=reserve)

    for literal in program.strings:
        globals_out[literal.symbol] = GlobalObject(
            name=literal.symbol, size=len(literal.data), align=1,
            init=literal.data)

    if runtime_inits:
        init_func = ast.FuncDef("__init_globals", VOID, [],
                                ast.Block(0, runtime_inits), 0)
        program.functions["__init_globals"] = init_func
        codegen = FunctionCodegen(program, init_func, options, registry,
                                  set(), escapes.globals_escaping)
        functions["__init_globals"] = codegen.run()

    layout_tables = {
        symbol: LayoutTableObject(symbol, table.serialize())
        for symbol, table in registry.tables.items()
    }
    program_out = IRProgram(
        functions=functions, globals=globals_out,
        layout_tables=layout_tables, entry="main",
        instrumented=options.instrument,
        allocator=options.allocator if options.instrument else "glibc",
        defense=options.defense if (options.instrument
                                    or options.defense in ("asan", "mpx"))
        else "none")
    if options.defense == "asan":
        from repro.baselines.asan import apply_asan_pass
        apply_asan_pass(program_out)
    assign_bin_codes(program_out)
    return program_out


# ---------------------------------------------------------------------------
# Global initialisers
# ---------------------------------------------------------------------------

def _constant_init_bytes(gvar: ast.GlobalVar) -> Optional[bytes]:
    """Encode a constant initialiser, or None if it needs runtime code."""
    size = gvar.var_type.size
    if gvar.init is None and gvar.init_list is None:
        return bytes(size)
    if gvar.init is not None:
        value = _const_value(gvar.init)
        if value is None:
            return None
        if isinstance(gvar.var_type, PointerType):
            return None if value != 0 else bytes(size)
        return _encode_scalar(value, gvar.var_type)
    # Initialiser list: every element must be constant.
    from repro.compiler.codegen import _scalar_leaves
    leaves = _scalar_leaves(gvar.var_type)
    if len(gvar.init_list) > len(leaves):
        raise CompileError(f"too many initialisers for {gvar.name}")
    image = bytearray(size)
    for item, (offset, leaf_type) in zip(gvar.init_list, leaves):
        value = _const_value(item)
        if value is None:
            raise CompileError(
                f"global {gvar.name}: initialiser list items must be constant")
        image[offset:offset + leaf_type.size] = _encode_scalar(
            value, leaf_type)
    return bytes(image)


def _encode_scalar(value: int, ctype) -> bytes:
    size = max(ctype.size, 1)
    return (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")


def _const_value(expr: ast.Expr) -> Optional[int]:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.SizeofType):
        return expr.query_type.size
    if isinstance(expr, ast.Unary):
        inner = _const_value(expr.operand)
        if inner is None:
            return None
        return {"-": -inner, "~": ~inner, "!": int(not inner)}[expr.op]
    if isinstance(expr, ast.Cast):
        return _const_value(expr.operand)
    if isinstance(expr, ast.Binary):
        left, right = _const_value(expr.left), _const_value(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": left + right, "-": left - right, "*": left * right,
                "/": left // right if right else None,
                "%": left % right if right else None,
                "<<": left << right, ">>": left >> right,
                "&": left & right, "|": left | right, "^": left ^ right,
            }[expr.op]
        except KeyError:
            return None
    return None


def _runtime_init_stmt(gvar: ast.GlobalVar) -> ast.Stmt:
    """Build ``<global> = <init expr>;`` for the synthetic init function."""
    if gvar.init_list is not None:
        raise CompileError(
            f"global {gvar.name}: non-constant initialiser lists unsupported")
    target = ast.Ident(gvar.line, gvar.var_type, True, gvar.name, "global")
    assign = ast.Assign(gvar.line, gvar.var_type, False, "=",
                        target, gvar.init)
    return ast.ExprStmt(gvar.line, assign)
