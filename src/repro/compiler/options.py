"""Compiler options: the knobs the evaluation harness sweeps.

``CompilerOptions`` selects between the paper's program versions:

* *baseline* — no instrumentation, glibc-style allocator;
* *wrapped*  — instrumented, wrapped allocator (libc malloc + local-offset
  metadata, global-table fallback);
* *subheap*  — instrumented, subheap (pool-over-buddy) allocator.

``no_promote`` reproduces the paper's no-promote configuration: promotes
execute as NOPs (no metadata access, no bounds produced), isolating the
promote instruction's runtime contribution in Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ifp.config import IFPConfig, DEFAULT_CONFIG


@dataclass(frozen=True)
class CompilerOptions:
    instrument: bool = True
    #: 'glibc' | 'wrapped' | 'subheap'
    allocator: str = "wrapped"
    #: which defense to build: 'ifp' (the paper's), 'asan' (shadow-memory
    #: baseline), 'mpx' (bounds-table baseline), or 'none'
    defense: str = "ifp"
    #: generate layout tables and subobject-index maintenance
    narrowing: bool = True
    #: promote executes as a NOP (evaluation's "no-promote" build)
    no_promote: bool = False
    #: insert explicit ifpchk instead of relying on implicit checks
    explicit_checks: bool = False
    #: model callee-saved bounds spills (stbnd/ldbnd in prologues)
    bounds_spills: bool = True
    ifp: IFPConfig = DEFAULT_CONFIG

    @classmethod
    def baseline(cls) -> "CompilerOptions":
        return cls(instrument=False, allocator="glibc", defense="none")

    @classmethod
    def asan(cls) -> "CompilerOptions":
        """ASan-like baseline: shadow memory, redzones, inline checks."""
        return cls(instrument=False, allocator="glibc", defense="asan")

    @classmethod
    def mpx(cls) -> "CompilerOptions":
        """MPX-like baseline: per-pointer bounds in a location-indexed
        bounds table, compiler-created bounds, implicit checks."""
        return cls(instrument=False, allocator="glibc", defense="mpx")

    @classmethod
    def wrapped(cls, **kwargs) -> "CompilerOptions":
        return cls(instrument=True, allocator="wrapped", **kwargs)

    @classmethod
    def subheap(cls, **kwargs) -> "CompilerOptions":
        return cls(instrument=True, allocator="subheap", **kwargs)

    def with_no_promote(self) -> "CompilerOptions":
        return replace(self, no_promote=True)
