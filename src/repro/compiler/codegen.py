"""AST → IR lowering with optional In-Fat Pointer instrumentation.

One lowering path serves every configuration; ``CompilerOptions`` decides
whether the IFP behaviours are woven in:

* address-taken locals are placed in memory and *registered* (metadata
  appended per the local-offset scheme, or the global-table fallback for
  oversize objects), with deregistration in a common epilogue;
* escaping globals are fetched through per-global ``getptr`` runtime calls
  (registered on first use — the paper's lazy global registration);
* pointer loads and legacy-call results are eagerly ``promote``-d (the
  paper's hoisting: only pointers *not* derived from another pointer need
  promote);
* pointer arithmetic uses ``ifpadd`` (tag-maintaining), member/array
  descents accumulate ``ifpidx`` deltas that are applied when a subobject
  pointer is materialised as a value, along with a static ``ifpbnd``
  narrowing;
* variable-indexed accesses to statically-known aggregates get a static
  ``ifpbnd`` so the implicit check enforces the *subobject* bound;
* pointer stores are preceded by ``ifpextract`` (demote);
* allocator calls are rewritten to the IFP runtime with deduced layout
  tables (type deduction only succeeds at direct, typed call sites —
  allocation wrappers and function-pointer calls defeat it, exactly as
  the paper reports for CoreMark/bzip2/wolfcrypt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.mpx import MPX_TABLE_BASE
from repro.errors import CompileError
from repro.compiler.ir import (
    GlobalObject, IRFunction, Instr, LocalObjectInfo, Op,
)
from repro.compiler.layout_gen import LayoutTableRegistry, member_delta
from repro.compiler.options import CompilerOptions
from repro.ifp.schemes.local_offset import align_up
from repro.ifp.tag import Scheme
from repro.lang import astnodes as ast
from repro.lang.ctypes import (
    ArrayType, CType, FunctionType, INT, IntType, LONG, PointerType,
    StructType, ULONG, VOID, decay,
)
from repro.lang.sema import BUILTIN_SIGNATURES, Program

#: builtins whose calls are rewritten to the IFP runtime when instrumenting
_ALLOC_BUILTINS = {"malloc", "calloc", "realloc", "free"}

#: comparison operator -> (BIN name, swap operands)
_CMP_OPS = {
    "==": ("seq", False), "!=": ("sne", False),
    "<": ("slt", False), ">": ("slt", True),
    "<=": ("sle", False), ">=": ("sle", True),
}

_ARITH_OPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
}


@dataclass
class Value:
    """An rvalue held in a virtual register."""

    reg: int
    ctype: CType
    has_bounds: bool = False


@dataclass
class AddrInfo:
    """An lvalue: an address plus static narrowing context."""

    reg: int
    ctype: CType          #: type of the object at the address
    has_bounds: bool      #: the address register carries an IFPR bounds
    idx_delta: int = 0    #: accumulated subobject-index delta
    narrow_ok: bool = False  #: tag context known (deltas are meaningful)
    at_top: bool = True   #: still at the whole-object entry
    is_sub: bool = False  #: a strict subobject of some registered object


@dataclass
class _VarInfo:
    kind: str             #: 'reg' | 'frame'
    ctype: CType
    reg: int = -1         #: value register ('reg' kind)
    has_bounds: bool = False
    slot: int = 0         #: frame offset ('frame' kind)
    registered: bool = False
    tagged_reg: int = -1  #: register holding the registered tagged pointer
    layout_symbol: str = ""
    scheme: str = ""


class FunctionCodegen:
    """Lowers one function body."""

    def __init__(self, program: Program, func: ast.FuncDef,
                 options: CompilerOptions, registry: LayoutTableRegistry,
                 escaping_locals: set, escaping_globals: set):
        self.program = program
        self.func = func
        self.options = options
        self.registry = registry
        self.escaping_locals = escaping_locals
        self.escaping_globals = escaping_globals
        self.instrs: List[Instr] = []
        self.num_regs = 0
        self.frame_size = 0
        self.vars: Dict[str, _VarInfo] = {}
        self.scopes: List[List[str]] = [[]]
        self.labels: Dict[int, int] = {}
        self.next_label = 0
        self.loop_stack: List[Tuple[int, int]] = []  # (break, continue)
        self.ret_reg = -1
        self.epilogue_label = -1
        self.local_objects: List[LocalObjectInfo] = []
        self.makes_calls = False
        self.param_regs: List[int] = []
        self.param_is_pointer: List[bool] = []
        #: MPX-like baseline mode (bounds table keyed by pointer location)
        self.mpx = options.defense == "mpx" and not options.instrument

    # -- small helpers ---------------------------------------------------------

    @property
    def inst(self) -> bool:
        return self.options.instrument

    def reg(self) -> int:
        self.num_regs += 1
        return self.num_regs - 1

    def emit(self, op: Op, **kw) -> Instr:
        ins = Instr(op, **kw)
        self.instrs.append(ins)
        return ins

    def label(self) -> int:
        self.next_label += 1
        return self.next_label - 1

    def place(self, label: int) -> None:
        self.labels[label] = len(self.instrs)

    def alloc_slot(self, size: int, align: int) -> int:
        self.frame_size = (self.frame_size + align - 1) & ~(align - 1)
        offset = self.frame_size
        self.frame_size += size
        return offset

    def li(self, value: int) -> int:
        dst = self.reg()
        self.emit(Op.LI, dst=dst, imm=value)
        return dst

    # -- entry point -----------------------------------------------------------

    def run(self) -> IRFunction:
        func = self.func
        self.ret_reg = self.reg()
        self.epilogue_label = self.label()
        # Parameters.
        for param in func.params:
            ptype = decay(param.type)
            preg = self.reg()
            self.param_regs.append(preg)
            self.param_is_pointer.append(ptype.is_pointer)
            if param.name in self.escaping_locals:
                info = self._declare_memory_local(param.name, ptype)
                addr = self.reg()
                self.emit(Op.FRAME, dst=addr, imm=info.slot)
                self.emit(Op.STORE, a=addr, b=preg, size=ptype.size)
            else:
                self.vars[param.name] = _VarInfo(
                    "reg", ptype, reg=preg,
                    has_bounds=(self.inst or self.mpx)
                    and ptype.is_pointer)
            self.scopes[0].append(param.name)
        self.lower_block(func.body)
        # Fall off the end: return 0 for main, void otherwise.
        if func.name == "main" and not func.ret.is_void:
            self.emit(Op.LI, dst=self.ret_reg, imm=0)
        self.emit(Op.JMP, target=self.epilogue_label)
        # Epilogue: deregistrations, then return.
        self.place(self.epilogue_label)
        self._emit_deregistrations()
        if func.ret.is_void:
            self.emit(Op.RET)
        else:
            self.emit(Op.RET, a=self.ret_reg)
        self._insert_bounds_spills()
        self._resolve_labels()
        ir = IRFunction(
            name=func.name,
            param_regs=self.param_regs,
            param_is_pointer=self.param_is_pointer,
            num_regs=self.num_regs,
            frame_size=align_up(self.frame_size, 16) if self.frame_size else 0,
            instrs=self.instrs,
            ret_is_pointer=decay(func.ret).is_pointer,
            instrumented=self.inst,
            local_objects=self.local_objects,
        )
        return ir

    def _resolve_labels(self) -> None:
        for ins in self.instrs:
            if ins.op in (Op.JMP, Op.BZ, Op.BNZ):
                ins.target = self.labels[ins.target]

    def _insert_bounds_spills(self) -> None:
        """Model callee-saved bounds spills (stbnd/ldbnd) for pointer
        parameters that stay live across calls (paper Section 4.1.2).

        With 32 bounds registers paired to the GPRs, small functions keep
        every live bounds value in callee-saved registers; spills only
        appear under register pressure.  The pressure proxy is the
        function's pointer-parameter count plus its virtual-register
        count (large bodies exhaust the callee-saved set)."""
        if not (self.inst and self.options.bounds_spills and self.makes_calls):
            return
        pointer_params = [r for r, is_ptr
                          in zip(self.param_regs, self.param_is_pointer)
                          if is_ptr]
        # Callee-saved bounds registers absorb the first few live pointer
        # values; larger bodies (more virtual registers) leave fewer free.
        capacity = max(0, 2 - self.num_regs // 96)
        pointer_params = pointer_params[capacity:]
        if not pointer_params:
            return
        prologue: List[Instr] = []
        epilogue: List[Instr] = []
        for preg in pointer_params:
            slot = self.alloc_slot(16, 16)
            addr_in = self.reg()
            prologue.append(Instr(Op.FRAME, dst=addr_in, imm=slot))
            prologue.append(Instr(Op.STBND, a=addr_in, b=preg))
            addr_out = self.reg()
            epilogue.append(Instr(Op.FRAME, dst=addr_out, imm=slot))
            epilogue.append(Instr(Op.LDBND, dst=preg, a=addr_out))
        # Prologue goes first; epilogue right before the final RET.
        ret_index = len(self.instrs) - 1
        self.instrs = (prologue + self.instrs[:ret_index]
                       + epilogue + self.instrs[ret_index:])
        shift = len(prologue)
        for label, index in self.labels.items():
            self.labels[label] = index + shift
        self.frame_size = align_up(self.frame_size, 16)

    # -- declarations -------------------------------------------------------------

    def _declare_memory_local(self, name: str, ctype: CType) -> _VarInfo:
        """Create a frame-resident local, registering it when instrumented."""
        register = self.inst
        layout_symbol = ""
        scheme = ""
        if register:
            size = ctype.size
            if self.options.narrowing:
                layout_symbol = self.registry.symbol_for(ctype)
            cfg = self.options.ifp
            local_scheme = "local_offset" in cfg.schemes_enabled \
                and 0 < size <= cfg.local_max_object
            if local_scheme and layout_symbol:
                table = self.registry.tables[layout_symbol]
                if len(table) > cfg.local_max_layout_entries:
                    layout_symbol = ""  # index field cannot address the table
            if local_scheme:
                slot = self.alloc_slot(align_up(size, cfg.granule) + 16,
                                       max(16, ctype.align))
                scheme = "local_offset"
            else:
                slot = self.alloc_slot(size, max(ctype.align, 8))
                scheme = "global_table"
        else:
            slot = self.alloc_slot(max(ctype.size, 1), max(ctype.align, 1))
        info = _VarInfo("frame", ctype, slot=slot, registered=register,
                        layout_symbol=layout_symbol, scheme=scheme)
        self.vars[name] = info
        self.scopes[-1].append(name)
        if register:
            self._emit_registration(name, info)
        return info

    def _emit_registration(self, name: str, info: _VarInfo) -> None:
        """Emit the object-metadata initialisation for a stack object."""
        cfg = self.options.ifp
        size = info.ctype.size
        base = self.reg()
        self.emit(Op.FRAME, dst=base, imm=info.slot)
        lt_reg = self.reg()
        if info.layout_symbol:
            self.emit(Op.GLOB, dst=lt_reg, name=info.layout_symbol)
        else:
            self.emit(Op.LI, dst=lt_reg, imm=0)
        if info.scheme == "local_offset":
            aligned = align_up(size, cfg.granule)
            md = self.reg()
            self.emit(Op.BINI, dst=md, a=base, imm=aligned, name="add")
            mac = self.reg()
            self.emit(Op.IFPMAC, dst=mac, a=md, b=lt_reg, imm=size)
            self.emit(Op.STORE, a=md, b=lt_reg, size=8)
            size_reg = self.li(size)
            self.emit(Op.STORE, a=md, b=size_reg, imm=8, size=2)
            self.emit(Op.STORE, a=md, b=mac, imm=10, size=6)
            tagged = self.reg()
            payload = (aligned // cfg.granule) << cfg.local_subobj_bits
            tag16 = (int(Scheme.LOCAL_OFFSET) << 12) | payload
            self.emit(Op.IFPMD, dst=tagged, a=base, imm=tag16,
                      name="local+lt" if info.layout_symbol else "local")
            bounded = self.reg()
            self.emit(Op.IFPBND, dst=bounded, a=tagged, imm=size)
            info.tagged_reg = bounded
        else:
            size_reg = self.li(size)
            tagged = self.reg()
            self.makes_calls = True
            self.emit(Op.CALL, dst=tagged, name="__ifp_register_gt",
                      args=[base, size_reg, lt_reg],
                      signed=bool(info.layout_symbol))
            info.tagged_reg = tagged

    def _emit_deregistrations(self) -> None:
        for name in [n for scope in self.scopes for n in scope]:
            info = self.vars.get(name)
            if info is None or not info.registered:
                continue
            if info.scheme == "local_offset":
                base = self.reg()
                self.emit(Op.FRAME, dst=base, imm=info.slot)
                md = self.reg()
                self.emit(Op.BINI, dst=md, a=base,
                          imm=align_up(info.ctype.size,
                                       self.options.ifp.granule), name="add")
                zero = self.li(0)
                self.emit(Op.STORE, a=md, b=zero, size=8)
                self.emit(Op.STORE, a=md, b=zero, imm=8, size=8)
            else:
                self.emit(Op.CALL, dst=-1, name="__ifp_deregister_gt",
                          args=[info.tagged_reg])

    # -- statements -------------------------------------------------------------------

    def lower_block(self, block: ast.Block) -> None:
        self.scopes.append([])
        for stmt in block.body:
            self.lower_stmt(stmt)
        # NOTE: deregistration happens in the common epilogue (objects live
        # for the whole frame), matching stack-slot lifetime in the VM.
        self.scopes.pop()

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_vardecl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._lower_switch(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.lower_expr(stmt.value)
                value = self.coerce(value, self.func.ret)
                self.emit(Op.MV, dst=self.ret_reg, a=value.reg)
            self.emit(Op.JMP, target=self.epilogue_label)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise CompileError("break outside loop")
            self.emit(Op.JMP, target=self.loop_stack[-1][0])
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack or self.loop_stack[-1][1] < 0:
                raise CompileError("continue outside loop")
            self.emit(Op.JMP, target=self.loop_stack[-1][1])
        else:  # pragma: no cover
            raise CompileError(f"unknown statement {type(stmt).__name__}")

    def _lower_vardecl(self, decl: ast.VarDecl) -> None:
        name, ctype = decl.name, decl.var_type
        needs_memory = ctype.is_aggregate or name in self.escaping_locals
        if needs_memory:
            # Scope shadowing: rename previously-declared vars of same name.
            if name in self.vars:
                self.vars[f"{name}@{len(self.instrs)}"] = self.vars.pop(name)
            info = self._declare_memory_local(name, ctype)
            if decl.init is not None:
                value = self.lower_expr(decl.init, ptr_hint=_pointee_hint(ctype))
                value = self.coerce(value, ctype)
                addr = self._frame_addr(info)
                self._store_scalar(addr, value, ctype)
            if decl.init_list is not None:
                self._lower_aggregate_init(info, ctype, decl.init_list)
        else:
            if name in self.vars:
                self.vars[f"{name}@{len(self.instrs)}"] = self.vars.pop(name)
            vreg = self.reg()
            info = _VarInfo("reg", ctype, reg=vreg)
            self.vars[name] = info
            self.scopes[-1].append(name)
            if decl.init is not None:
                value = self.lower_expr(decl.init, ptr_hint=_pointee_hint(ctype))
                value = self.coerce(value, ctype)
                self.emit(Op.MV, dst=vreg, a=value.reg)
                info.has_bounds = value.has_bounds
            else:
                self.emit(Op.LI, dst=vreg, imm=0)

    def _frame_addr(self, info: _VarInfo) -> int:
        reg = self.reg()
        self.emit(Op.FRAME, dst=reg, imm=info.slot)
        return reg

    def _lower_aggregate_init(self, info: _VarInfo, ctype: CType,
                              items: List[ast.Expr]) -> None:
        """Flattened scalar initialisation of an array/struct local."""
        leaves = _scalar_leaves(ctype)
        if len(items) > len(leaves):
            raise CompileError("too many initialisers")
        base = self._frame_addr(info)
        for item, (offset, leaf_type) in zip(items, leaves):
            value = self.lower_expr(item)
            value = self.coerce(value, leaf_type)
            self.emit(Op.STORE, a=base, b=value.reg, imm=offset,
                      size=leaf_type.size)

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self.lower_expr(stmt.cond)
        else_label = self.label()
        self.emit(Op.BZ, a=cond.reg, target=else_label)
        self.lower_stmt(stmt.then)
        if stmt.otherwise is not None:
            end_label = self.label()
            self.emit(Op.JMP, target=end_label)
            self.place(else_label)
            self.lower_stmt(stmt.otherwise)
            self.place(end_label)
        else:
            self.place(else_label)

    def _lower_while(self, stmt: ast.While) -> None:
        head = self.label()
        end = self.label()
        body_start = self.label()
        if stmt.check_after:
            self.place(body_start)
            self.loop_stack.append((end, head))
            self.lower_stmt(stmt.body)
            self.loop_stack.pop()
            self.place(head)
            cond = self.lower_expr(stmt.cond)
            self.emit(Op.BNZ, a=cond.reg, target=body_start)
            self.place(end)
        else:
            self.place(head)
            cond = self.lower_expr(stmt.cond)
            self.emit(Op.BZ, a=cond.reg, target=end)
            self.loop_stack.append((end, head))
            self.lower_stmt(stmt.body)
            self.loop_stack.pop()
            self.emit(Op.JMP, target=head)
            self.place(end)

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        head = self.label()
        step_label = self.label()
        end = self.label()
        self.place(head)
        if stmt.cond is not None:
            cond = self.lower_expr(stmt.cond)
            self.emit(Op.BZ, a=cond.reg, target=end)
        self.loop_stack.append((end, step_label))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        self.place(step_label)
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self.emit(Op.JMP, target=head)
        self.place(end)

    def _lower_switch(self, stmt: ast.Switch) -> None:
        """Lower a switch to a compare chain with fallthrough bodies
        (the dispatch shape RISC-V compilers emit for sparse cases)."""
        scrutinee = self.lower_expr(stmt.scrutinee)
        end = self.label()
        body_labels = [self.label() for _case in stmt.cases]
        default_label = end
        for case, body_label in zip(stmt.cases, body_labels):
            if case.value is None:
                default_label = body_label
                continue
            match = self.reg()
            value_reg = self.li(case.value)
            self.emit(Op.BIN, dst=match, a=scrutinee.reg, b=value_reg,
                      name="seq")
            self.emit(Op.BNZ, a=match, target=body_label)
        self.emit(Op.JMP, target=default_label)
        # break inside a switch exits the switch; continue still belongs
        # to the enclosing loop (if any).
        enclosing_continue = self.loop_stack[-1][1] if self.loop_stack \
            else -1
        self.loop_stack.append((end, enclosing_continue))
        for case, body_label in zip(stmt.cases, body_labels):
            self.place(body_label)
            for inner in case.body:
                self.lower_stmt(inner)
            # no jump: C fallthrough into the next case body
        self.loop_stack.pop()
        self.place(end)

    # -- lvalues ---------------------------------------------------------------------

    def lower_addr(self, expr: ast.Expr, for_escape: bool = False) -> AddrInfo:
        if isinstance(expr, ast.Ident):
            return self._addr_ident(expr, for_escape)
        if isinstance(expr, ast.Deref):
            pointer = self.lower_expr(expr.pointer)
            pointer = self._ensure_promoted(pointer)
            pointee = decay(pointer.ctype).pointee
            return AddrInfo(pointer.reg, pointee, pointer.has_bounds,
                            idx_delta=0, narrow_ok=self.inst, at_top=False,
                            is_sub=False)
        if isinstance(expr, ast.Member):
            return self._addr_member(expr, for_escape)
        if isinstance(expr, ast.Index):
            return self._addr_index(expr, for_escape)
        if isinstance(expr, ast.StrLit):
            reg = self.reg()
            self.emit(Op.GLOB, dst=reg, name=expr.symbol)
            return AddrInfo(reg, ArrayType(decay(expr.ctype).pointee,
                                           1), False, narrow_ok=False)
        raise CompileError(
            f"expression is not an lvalue: {type(expr).__name__}")

    def _addr_ident(self, expr: ast.Ident, for_escape: bool) -> AddrInfo:
        name = expr.name
        if expr.binding in ("local", "param"):
            info = self.vars[name]
            if info.kind == "reg":
                raise CompileError(
                    f"address of register variable {name!r} "
                    "(escape analysis should have placed it in memory)")
            if info.registered and info.tagged_reg >= 0:
                return AddrInfo(info.tagged_reg, info.ctype, True,
                                narrow_ok=bool(info.layout_symbol),
                                at_top=True)
            reg = self._frame_addr(info)
            return AddrInfo(reg, info.ctype, False, narrow_ok=False,
                            at_top=True)
        if expr.binding == "global":
            gvar = self.program.globals[name]
            if self.inst and for_escape and name in self.escaping_globals:
                tagged = self.reg()
                self.makes_calls = True
                self.emit(Op.CALL, dst=tagged,
                          name=f"__ifp_getptr_{name}", args=[])
                return AddrInfo(tagged, gvar.var_type, True,
                                narrow_ok=True, at_top=True)
            reg = self.reg()
            self.emit(Op.GLOB, dst=reg, name=name)
            return AddrInfo(reg, gvar.var_type, False, narrow_ok=False,
                            at_top=True)
        raise CompileError(f"cannot take address of {name!r}")

    def _addr_member(self, expr: ast.Member,
                     for_escape: bool = False) -> AddrInfo:
        if expr.arrow:
            pointer = self.lower_expr(expr.base)
            pointer = self._ensure_promoted(pointer)
            struct_type = decay(pointer.ctype).pointee
            base = AddrInfo(pointer.reg, struct_type, pointer.has_bounds,
                            narrow_ok=self.inst, at_top=False)
        else:
            base = self.lower_addr(expr.base, for_escape)
            struct_type = base.ctype
        if not isinstance(struct_type, StructType):
            raise CompileError("member access on non-struct")
        field_info = struct_type.field(expr.name)
        reg = self._pointer_add_imm(base, field_info.offset)
        delta = 0
        if base.narrow_ok and self.options.narrowing:
            try:
                delta = member_delta(struct_type, expr.name)
            except KeyError:  # pragma: no cover
                delta = 0
        return AddrInfo(reg, field_info.type, base.has_bounds,
                        idx_delta=base.idx_delta + delta,
                        narrow_ok=base.narrow_ok, at_top=False, is_sub=True)

    def _addr_index(self, expr: ast.Index,
                    for_escape: bool = False) -> AddrInfo:
        base_type = expr.base.ctype
        if base_type is not None and base_type.is_array:
            base = self.lower_addr(expr.base, for_escape)
            element = base_type.element
            idx_delta = base.idx_delta
            # Descending from a whole-object array into its array entry.
            if base.at_top and base.narrow_ok and self.options.narrowing \
                    and isinstance(base.ctype, ArrayType):
                idx_delta += 1
            # Static narrowing: bound the access to this array subobject.
            bounded_reg = base.reg
            if (self.inst or self.mpx) \
                    and not isinstance(expr.index, ast.IntLit):
                bounded_reg = self.reg()
                self.emit(Op.IFPBND, dst=bounded_reg, a=base.reg,
                          imm=base_type.size)
            base = AddrInfo(bounded_reg, base.ctype,
                            base.has_bounds or (bounded_reg != base.reg),
                            idx_delta=idx_delta, narrow_ok=base.narrow_ok,
                            at_top=False, is_sub=base.is_sub)
        else:
            pointer = self.lower_expr(expr.base)
            pointer = self._ensure_promoted(pointer)
            element = decay(pointer.ctype).pointee
            base = AddrInfo(pointer.reg, element, pointer.has_bounds,
                            narrow_ok=self.inst, at_top=False)
        if element.size == 0:
            raise CompileError("indexing incomplete element type")
        if isinstance(expr.index, ast.IntLit):
            reg = self._pointer_add_imm(base, expr.index.value * element.size)
        else:
            index = self.lower_expr(expr.index)
            scaled = self.reg()
            self.emit(Op.BINI, dst=scaled, a=index.reg, imm=element.size,
                      name="mul")
            reg = self.reg()
            if self.inst or self.mpx:
                self.emit(Op.IFPADD, dst=reg, a=base.reg, b=scaled)
            else:
                self.emit(Op.BIN, dst=reg, a=base.reg, b=scaled, name="add")
        return AddrInfo(reg, element, base.has_bounds,
                        idx_delta=base.idx_delta, narrow_ok=base.narrow_ok,
                        at_top=False, is_sub=base.is_sub)

    def _pointer_add_imm(self, base: AddrInfo, offset: int) -> int:
        if offset == 0:
            return base.reg
        reg = self.reg()
        if self.inst or self.mpx:
            self.emit(Op.IFPADD, dst=reg, a=base.reg, imm=offset)
        else:
            self.emit(Op.BINI, dst=reg, a=base.reg, imm=offset, name="add")
        return reg

    def materialize(self, addr: AddrInfo) -> Value:
        """Turn an lvalue path into a first-class pointer value, applying
        the accumulated ``ifpidx`` delta and a static ``ifpbnd`` narrow."""
        reg = addr.reg
        pointee = addr.ctype
        if self.inst and self.options.narrowing and addr.narrow_ok \
                and addr.idx_delta:
            out = self.reg()
            self.emit(Op.IFPIDX, dst=out, a=reg, imm=addr.idx_delta)
            reg = out
        if (self.inst and addr.is_sub and pointee.size > 0) \
                or (self.mpx and pointee.size > 0):
            # MPX creates bounds (bndmk) at every address-taken site;
            # IFP only needs the static narrow for strict subobjects.
            out = self.reg()
            self.emit(Op.IFPBND, dst=out, a=reg, imm=pointee.size)
            reg = out
            has_bounds = True
        else:
            has_bounds = addr.has_bounds
        if isinstance(pointee, ArrayType):
            return Value(reg, PointerType(pointee.element), has_bounds)
        return Value(reg, PointerType(pointee), has_bounds)

    # -- expressions -----------------------------------------------------------------

    def lower_expr(self, expr: ast.Expr,
                   ptr_hint: Optional[CType] = None) -> Value:
        method = getattr(self, "_e_" + type(expr).__name__)
        if isinstance(expr, (ast.Call, ast.Cast)):
            return method(expr, ptr_hint)
        return method(expr)

    def _e_IntLit(self, expr: ast.IntLit) -> Value:
        return Value(self.li(expr.value), expr.ctype)

    def _e_StrLit(self, expr: ast.StrLit) -> Value:
        reg = self.reg()
        self.emit(Op.GLOB, dst=reg, name=expr.symbol)
        return Value(reg, expr.ctype)

    def _e_SizeofType(self, expr: ast.SizeofType) -> Value:
        return Value(self.li(expr.query_type.size), ULONG)

    def _e_SizeofExpr(self, expr: ast.SizeofExpr) -> Value:
        return Value(self.li(expr.operand.ctype.size), ULONG)

    def _ensure_promoted(self, value: Value) -> Value:
        """Lazily promote a pointer whose bounds state is unknown (e.g. an
        int-to-pointer cast) before it is dereferenced."""
        if self.inst and not value.has_bounds \
                and decay(value.ctype).is_pointer:
            out = self.reg()
            self.emit(Op.PROMOTE, dst=out, a=value.reg)
            return Value(out, value.ctype, has_bounds=True)
        return value

    def _e_Ident(self, expr: ast.Ident) -> Value:
        if expr.binding == "function":
            reg = self.reg()
            self.emit(Op.GLOB, dst=reg, name=f"__func_{expr.name}")
            return Value(reg, PointerType(expr.ctype))
        if expr.ctype.is_aggregate:
            addr = self.lower_addr(expr, for_escape=True)
            return self.materialize(addr)
        info = self.vars.get(expr.name) if expr.binding != "global" else None
        if info is not None and info.kind == "reg":
            return Value(info.reg, info.ctype, info.has_bounds)
        # Memory-resident scalar (local or global).
        addr = self.lower_addr(expr)
        return self._load_scalar(addr, expr.ctype)

    def _load_scalar(self, addr: AddrInfo, ctype: CType) -> Value:
        ctype = decay(ctype)
        if self.inst and self.options.explicit_checks and addr.has_bounds:
            # Explicit-check ablation: an ifpchk instruction per access
            # instead of relying on implicit bounds-checked IFPRs.
            checked = self.reg()
            self.emit(Op.IFPCHK, dst=checked, a=addr.reg,
                      imm=max(ctype.size, 1))
            addr = AddrInfo(checked, addr.ctype, addr.has_bounds,
                            addr.idx_delta, addr.narrow_ok, addr.at_top,
                            addr.is_sub)
        dst = self.reg()
        self.emit(Op.LOAD, dst=dst, a=addr.reg, size=max(ctype.size, 1),
                  signed=isinstance(ctype, IntType) and ctype.signed)
        value = Value(dst, ctype)
        if self.inst and ctype.is_pointer:
            # Eager promote after pointer loads (the paper's hoisting).
            out = self.reg()
            self.emit(Op.PROMOTE, dst=out, a=dst)
            value = Value(out, ctype, has_bounds=True)
        elif self.mpx and ctype.is_pointer:
            # bndldx: reload the pointer's bounds from the table entry
            # of its storage location.
            value = Value(dst, ctype,
                          has_bounds=self._mpx_bounds_load(addr.reg, dst))
        return value

    def _mpx_entry(self, location_reg: int) -> int:
        slot = self.reg()
        self.emit(Op.BINI, dst=slot, a=location_reg, imm=3, name="shr")
        scaled = self.reg()
        self.emit(Op.BINI, dst=scaled, a=slot, imm=4, name="shl")
        entry = self.reg()
        self.emit(Op.BINI, dst=entry, a=scaled, imm=MPX_TABLE_BASE,
                  name="add")
        return entry

    def _mpx_bounds_load(self, location_reg: int, pointer_reg: int) -> bool:
        entry = self._mpx_entry(location_reg)
        self.emit(Op.LDBND, dst=pointer_reg, a=entry)
        return True

    def _store_scalar(self, addr_reg: int, value: Value,
                      ctype: CType) -> None:
        ctype = decay(ctype)
        if self.inst and self.options.explicit_checks:
            checked = self.reg()
            self.emit(Op.IFPCHK, dst=checked, a=addr_reg,
                      imm=max(ctype.size, 1))
            addr_reg = checked
        reg = value.reg
        if self.inst and ctype.is_pointer and value.has_bounds:
            out = self.reg()
            self.emit(Op.IFPEXTRACT, dst=out, a=reg)
            reg = out
        self.emit(Op.STORE, a=addr_reg, b=reg, size=max(ctype.size, 1))
        if self.mpx and ctype.is_pointer:
            # bndstx: persist the pointer's bounds keyed by its location.
            entry = self._mpx_entry(addr_reg)
            self.emit(Op.STBND, a=entry, b=value.reg)

    def _e_Deref(self, expr: ast.Deref) -> Value:
        addr = self.lower_addr(expr)
        if addr.ctype.is_aggregate:
            return self.materialize(addr)
        return self._load_scalar(addr, expr.ctype)

    def _e_Index(self, expr: ast.Index) -> Value:
        # An aggregate-typed element decays to a first-class pointer
        # here, which is an escape of the root object (mirrors the
        # aggregate branch of _e_Ident and the escape analysis).
        addr = self.lower_addr(expr,
                               for_escape=bool(expr.ctype.is_aggregate))
        if addr.ctype.is_aggregate:
            return self.materialize(addr)
        return self._load_scalar(addr, expr.ctype)

    def _e_Member(self, expr: ast.Member) -> Value:
        addr = self.lower_addr(expr,
                               for_escape=bool(expr.ctype.is_aggregate))
        if addr.ctype.is_aggregate:
            return self.materialize(addr)
        return self._load_scalar(addr, expr.ctype)

    def _e_AddressOf(self, expr: ast.AddressOf) -> Value:
        if isinstance(expr.operand, ast.Ident) \
                and expr.operand.binding == "function":
            reg = self.reg()
            self.emit(Op.GLOB, dst=reg, name=f"__func_{expr.operand.name}")
            return Value(reg, expr.ctype)
        addr = self.lower_addr(expr.operand, for_escape=True)
        value = self.materialize(addr)
        return Value(value.reg, expr.ctype, value.has_bounds)

    def _e_Unary(self, expr: ast.Unary) -> Value:
        operand = self.lower_expr(expr.operand)
        dst = self.reg()
        name = {"-": "neg", "!": "lnot", "~": "bnot"}[expr.op]
        self.emit(Op.BINI, dst=dst, a=operand.reg, name=name)
        return Value(dst, expr.ctype)

    def _e_Binary(self, expr: ast.Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._short_circuit(expr)
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        left_t, right_t = decay(left.ctype), decay(right.ctype)
        dst = self.reg()
        if op in _CMP_OPS:
            name, swap = _CMP_OPS[op]
            a, b = (right, left) if swap else (left, right)
            pointerish = left_t.is_pointer or right_t.is_pointer
            if pointerish:
                name = "p" + name  # address-only comparison (tag-blind)
            signed = (not pointerish
                      and isinstance(left_t, IntType) and left_t.signed
                      and isinstance(right_t, IntType) and right_t.signed)
            self.emit(Op.BIN, dst=dst, a=a.reg, b=b.reg, name=name,
                      signed=signed)
            return Value(dst, INT)
        # Pointer arithmetic.
        if op in ("+", "-") and (left_t.is_pointer or right_t.is_pointer):
            return self._pointer_arith(op, left, right, expr.ctype, dst)
        name = _ARITH_OPS[op]
        signed = (isinstance(expr.ctype, IntType) and expr.ctype.signed)
        if name == "shr" and signed:
            name = "sar"
        self.emit(Op.BIN, dst=dst, a=left.reg, b=right.reg, name=name,
                  signed=signed)
        value = Value(dst, expr.ctype)
        return self._wrap_if_needed(value)

    def _wrap_if_needed(self, value: Value) -> Value:
        """Keep sub-64-bit arithmetic within its type's range."""
        ctype = value.ctype
        if isinstance(ctype, IntType) and ctype.size < 8:
            dst = self.reg()
            self.emit(Op.TRUNC, dst=dst, a=value.reg, size=ctype.size,
                      signed=ctype.signed)
            return Value(dst, ctype)
        return value

    def _pointer_arith(self, op: str, left: Value, right: Value,
                       result_type: CType, dst: int) -> Value:
        left_t, right_t = decay(left.ctype), decay(right.ctype)
        if left_t.is_pointer and right_t.is_pointer:
            # Pointer difference: (a - b) / sizeof(*a)
            diff = self.reg()
            self.emit(Op.BIN, dst=diff, a=left.reg, b=right.reg, name="psub")
            elem = max(left_t.pointee.size, 1)
            self.emit(Op.BINI, dst=dst, a=diff, imm=elem, name="div",
                      signed=True)
            return Value(dst, LONG)
        pointer, integer = (left, right) if left_t.is_pointer else (right, left)
        pointer_t = decay(pointer.ctype)
        elem = max(pointer_t.pointee.size, 1)
        scaled = self.reg()
        self.emit(Op.BINI, dst=scaled, a=integer.reg, imm=elem, name="mul")
        if op == "-":
            negated = self.reg()
            self.emit(Op.BINI, dst=negated, a=scaled, name="neg")
            scaled = negated
        if self.inst or self.mpx:
            self.emit(Op.IFPADD, dst=dst, a=pointer.reg, b=scaled)
        else:
            self.emit(Op.BIN, dst=dst, a=pointer.reg, b=scaled, name="add")
        return Value(dst, pointer_t, pointer.has_bounds)

    def _short_circuit(self, expr: ast.Binary) -> Value:
        dst = self.reg()
        end = self.label()
        if expr.op == "&&":
            self.emit(Op.LI, dst=dst, imm=0)
            left = self.lower_expr(expr.left)
            self.emit(Op.BZ, a=left.reg, target=end)
            right = self.lower_expr(expr.right)
            self.emit(Op.BZ, a=right.reg, target=end)
            self.emit(Op.LI, dst=dst, imm=1)
        else:
            self.emit(Op.LI, dst=dst, imm=1)
            left = self.lower_expr(expr.left)
            self.emit(Op.BNZ, a=left.reg, target=end)
            right = self.lower_expr(expr.right)
            self.emit(Op.BNZ, a=right.reg, target=end)
            self.emit(Op.LI, dst=dst, imm=0)
        self.place(end)
        return Value(dst, INT)

    def _e_Conditional(self, expr: ast.Conditional) -> Value:
        dst = self.reg()
        cond = self.lower_expr(expr.cond)
        else_label = self.label()
        end = self.label()
        self.emit(Op.BZ, a=cond.reg, target=else_label)
        then = self.lower_expr(expr.then)
        self.emit(Op.MV, dst=dst, a=then.reg)
        self.emit(Op.JMP, target=end)
        self.place(else_label)
        otherwise = self.lower_expr(expr.otherwise)
        self.emit(Op.MV, dst=dst, a=otherwise.reg)
        self.place(end)
        return Value(dst, expr.ctype,
                     then.has_bounds and otherwise.has_bounds)

    def _e_Assign(self, expr: ast.Assign) -> Value:
        target = expr.target
        if expr.op != "=":
            return self._compound_assign(expr)
        # Struct assignment lowers to memcpy.
        if decay(expr.ctype).is_struct:
            dst_addr = self.lower_addr(target, for_escape=False)
            src_addr = self.lower_addr(expr.value, for_escape=False)
            size_reg = self.li(expr.ctype.size)
            self.makes_calls = True
            self.emit(Op.CALL, dst=-1, name="memcpy",
                      args=[dst_addr.reg, src_addr.reg, size_reg])
            return Value(dst_addr.reg, expr.ctype)
        value = self.lower_expr(expr.value,
                                ptr_hint=_pointee_hint(target.ctype))
        value = self.coerce(value, target.ctype)
        if isinstance(target, ast.Ident) and target.binding != "global":
            info = self.vars[target.name]
            if info.kind == "reg":
                self.emit(Op.MV, dst=info.reg, a=value.reg)
                info.has_bounds = value.has_bounds
                return Value(info.reg, target.ctype, value.has_bounds)
        addr = self.lower_addr(target)
        self._store_scalar(addr.reg, value, target.ctype)
        return value

    def _compound_assign(self, expr: ast.Assign) -> Value:
        base_op = expr.op[:-1]
        target = expr.target
        synthetic = ast.Binary(expr.line, expr.ctype, False, base_op,
                               target, expr.value)
        synthetic.ctype = expr.ctype if not decay(expr.ctype).is_pointer \
            else target.ctype
        # Evaluate as target = target op value, re-lowering the target
        # lvalue (single-evaluation of complex lvalues is preserved for
        # the common Ident case, which is what the workloads use).
        if isinstance(target, ast.Ident) and target.binding != "global" \
                and target.name in self.vars \
                and self.vars[target.name].kind == "reg":
            info = self.vars[target.name]
            value = self._binary_inplace(base_op, Value(
                info.reg, info.ctype, info.has_bounds), expr.value)
            value = self.coerce(value, target.ctype)
            self.emit(Op.MV, dst=info.reg, a=value.reg)
            info.has_bounds = value.has_bounds
            return Value(info.reg, target.ctype, value.has_bounds)
        addr = self.lower_addr(target)
        current = self._load_scalar(
            AddrInfo(addr.reg, addr.ctype, addr.has_bounds), target.ctype)
        value = self._binary_inplace(base_op, current, expr.value)
        value = self.coerce(value, target.ctype)
        self._store_scalar(addr.reg, value, target.ctype)
        return value

    def _binary_inplace(self, op: str, current: Value,
                        value_expr: ast.Expr) -> Value:
        right = self.lower_expr(value_expr)
        current_t = decay(current.ctype)
        dst = self.reg()
        if current_t.is_pointer:
            return self._pointer_arith(op, current, right, current_t, dst)
        name = _ARITH_OPS[op]
        signed = isinstance(current_t, IntType) and current_t.signed
        if name == "shr" and signed:
            name = "sar"
        self.emit(Op.BIN, dst=dst, a=current.reg, b=right.reg, name=name,
                  signed=signed)
        return self._wrap_if_needed(Value(dst, current.ctype))

    def _e_IncDec(self, expr: ast.IncDec) -> Value:
        delta = 1 if expr.op == "++" else -1
        target = expr.target
        target_t = decay(target.ctype)
        step = delta * (max(target_t.pointee.size, 1)
                        if target_t.is_pointer else 1)
        if isinstance(target, ast.Ident) and target.binding != "global" \
                and target.name in self.vars \
                and self.vars[target.name].kind == "reg":
            info = self.vars[target.name]
            old = info.reg
            result_reg = old
            if expr.postfix:
                saved = self.reg()
                self.emit(Op.MV, dst=saved, a=old)
                result_reg = saved
            updated = self.reg()
            if target_t.is_pointer and (self.inst or self.mpx):
                self.emit(Op.IFPADD, dst=updated, a=old, imm=step)
            else:
                self.emit(Op.BINI, dst=updated, a=old, imm=step, name="add")
            wrapped = self._wrap_if_needed(Value(updated, info.ctype))
            self.emit(Op.MV, dst=info.reg, a=wrapped.reg)
            return Value(result_reg, target.ctype, info.has_bounds)
        addr = self.lower_addr(target)
        current = self._load_scalar(
            AddrInfo(addr.reg, addr.ctype, addr.has_bounds), target.ctype)
        result_reg = current.reg
        if expr.postfix:
            saved = self.reg()
            self.emit(Op.MV, dst=saved, a=current.reg)
            result_reg = saved
        updated = self.reg()
        if target_t.is_pointer and (self.inst or self.mpx):
            self.emit(Op.IFPADD, dst=updated, a=current.reg, imm=step)
        else:
            self.emit(Op.BINI, dst=updated, a=current.reg, imm=step,
                      name="add")
        wrapped = self._wrap_if_needed(Value(updated, target.ctype))
        self._store_scalar(addr.reg, Value(wrapped.reg, target.ctype,
                                           current.has_bounds), target.ctype)
        return Value(result_reg, target.ctype, current.has_bounds)

    def _e_Cast(self, expr: ast.Cast, ptr_hint: Optional[CType]) -> Value:
        target = expr.target_type
        hint = target.pointee if isinstance(target, PointerType) else ptr_hint
        value = self.lower_expr(expr.operand, ptr_hint=hint)
        if isinstance(target, IntType) and target.size < 8:
            dst = self.reg()
            self.emit(Op.TRUNC, dst=dst, a=value.reg, size=target.size,
                      signed=target.signed)
            return Value(dst, target)
        return Value(value.reg, target if not target.is_void else VOID,
                     value.has_bounds and target.is_pointer)

    def _e_Call(self, expr: ast.Call, ptr_hint: Optional[CType]) -> Value:
        self.makes_calls = True
        # Direct calls by name.
        if isinstance(expr.func, ast.Ident) and expr.func.binding == "function":
            name = expr.func.name
            if self.inst and name in _ALLOC_BUILTINS:
                return self._lower_alloc_call(name, expr, ptr_hint)
            if self.mpx and name in _ALLOC_BUILTINS:
                return self._lower_mpx_alloc_call(name, expr, ptr_hint)
            signature = expr.func.ctype
            args = self._lower_args(expr.args, signature)
            dst = self.reg() if not signature.ret.is_void else -1
            self.emit(Op.CALL, dst=dst, name=name,
                      args=[a.reg for a in args])
            return self._call_result(dst, signature.ret,
                                     internal=name in self.program.functions
                                     and self.program.functions[name].body
                                     is not None)
        # Indirect call through a function pointer.
        callee = self.lower_expr(expr.func)
        signature = decay(expr.func.ctype).pointee \
            if decay(expr.func.ctype).is_pointer else expr.func.ctype
        args = self._lower_args(expr.args, signature)
        dst = self.reg() if not signature.ret.is_void else -1
        self.emit(Op.CALLPTR, dst=dst, a=callee.reg,
                  args=[a.reg for a in args])
        return self._call_result(dst, signature.ret, internal=False)

    def _lower_args(self, arg_exprs: List[ast.Expr],
                    signature: FunctionType) -> List[Value]:
        args = []
        for index, arg in enumerate(arg_exprs):
            hint = None
            if index < len(signature.params):
                param = signature.params[index]
                hint = param.pointee if isinstance(param, PointerType) else None
            value = self.lower_expr(arg, ptr_hint=hint)
            if index < len(signature.params):
                value = self.coerce(value, signature.params[index])
            args.append(value)
        return args

    def _call_result(self, dst: int, ret: CType, internal: bool) -> Value:
        if dst < 0 or ret.is_void:
            return Value(self.li(0), VOID)
        ret = decay(ret)
        if self.inst and ret.is_pointer and not internal:
            # Legacy/unknown callee: promote the returned pointer.
            out = self.reg()
            self.emit(Op.PROMOTE, dst=out, a=dst)
            return Value(out, ret, has_bounds=True)
        return Value(dst, ret, has_bounds=self.inst and ret.is_pointer
                     and internal)

    def _lower_alloc_call(self, name: str, expr: ast.Call,
                          ptr_hint: Optional[CType]) -> Value:
        """Rewrite malloc/calloc/realloc/free to the IFP runtime."""
        if name == "free":
            pointer = self.lower_expr(expr.args[0])
            self.emit(Op.CALL, dst=-1, name="__ifp_free", args=[pointer.reg])
            return Value(self.li(0), VOID)
        # Deduce the allocation's element type for layout-table metadata.
        lt_symbol = ""
        elem_size = 0
        hint = ptr_hint
        if hint is not None and isinstance(hint, StructType) \
                and self.options.narrowing:
            lt_symbol = self.registry.symbol_for(hint)
            elem_size = hint.size
        lt_reg = self.reg()
        if lt_symbol:
            self.emit(Op.GLOB, dst=lt_reg, name=lt_symbol)
        else:
            self.emit(Op.LI, dst=lt_reg, imm=0)
        elem_reg = self.li(elem_size)
        dst = self.reg()
        if name == "malloc":
            size = self.lower_expr(expr.args[0])
            self.emit(Op.CALL, dst=dst, name="__ifp_malloc",
                      args=[size.reg, lt_reg, elem_reg])
        elif name == "calloc":
            count = self.lower_expr(expr.args[0])
            size = self.lower_expr(expr.args[1])
            self.emit(Op.CALL, dst=dst, name="__ifp_calloc",
                      args=[count.reg, size.reg, lt_reg, elem_reg])
        else:  # realloc
            pointer = self.lower_expr(expr.args[0])
            size = self.lower_expr(expr.args[1])
            self.emit(Op.CALL, dst=dst, name="__ifp_realloc",
                      args=[pointer.reg, size.reg, lt_reg, elem_reg])
        return Value(dst, PointerType(hint) if hint is not None else
                     decay(expr.ctype), has_bounds=True)

    def _lower_mpx_alloc_call(self, name: str, expr: ast.Call,
                              ptr_hint: Optional[CType]) -> Value:
        """MPX: plain libc allocation plus a bndmk (ifpbnd) with the
        requested size."""
        if name == "free":
            pointer = self.lower_expr(expr.args[0])
            self.emit(Op.CALL, dst=-1, name="free", args=[pointer.reg])
            return Value(self.li(0), VOID)
        dst = self.reg()
        if name == "malloc":
            size = self.lower_expr(expr.args[0])
            self.emit(Op.CALL, dst=dst, name="malloc", args=[size.reg])
            size_reg = size.reg
        elif name == "calloc":
            count = self.lower_expr(expr.args[0])
            size = self.lower_expr(expr.args[1])
            self.emit(Op.CALL, dst=dst, name="calloc",
                      args=[count.reg, size.reg])
            size_reg = self.reg()
            self.emit(Op.BIN, dst=size_reg, a=count.reg, b=size.reg,
                      name="mul")
        else:  # realloc
            pointer = self.lower_expr(expr.args[0])
            size = self.lower_expr(expr.args[1])
            self.emit(Op.CALL, dst=dst, name="realloc",
                      args=[pointer.reg, size.reg])
            size_reg = size.reg
        bounded = self.reg()
        self.emit(Op.IFPBND, dst=bounded, a=dst, b=size_reg)
        result_type = (PointerType(ptr_hint) if ptr_hint is not None
                       else decay(expr.ctype))
        return Value(bounded, result_type, has_bounds=True)

    # -- conversions --------------------------------------------------------------------

    def coerce(self, value: Value, target: CType) -> Value:
        target = decay(target)
        source = decay(value.ctype)
        if isinstance(target, IntType) and target.size < 8 \
                and not (isinstance(source, IntType)
                         and source.size <= target.size
                         and source.signed == target.signed):
            dst = self.reg()
            self.emit(Op.TRUNC, dst=dst, a=value.reg, size=target.size,
                      signed=target.signed)
            return Value(dst, target)
        return value


def _pointee_hint(ctype: Optional[CType]) -> Optional[CType]:
    """Element-type hint for allocation-site layout-table deduction."""
    if isinstance(ctype, PointerType):
        return ctype.pointee
    return None


def _scalar_leaves(ctype: CType) -> List[Tuple[int, CType]]:
    """Flattened (offset, scalar type) leaves of an aggregate, in order."""
    out: List[Tuple[int, CType]] = []

    def walk(t: CType, base: int) -> None:
        if isinstance(t, StructType):
            for field_info in t.fields:
                walk(field_info.type, base + field_info.offset)
        elif isinstance(t, ArrayType):
            for i in range(t.count):
                walk(t.element, base + i * t.element.size)
        else:
            out.append((base, t))

    walk(ctype, 0)
    return out
