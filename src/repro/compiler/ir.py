"""The register-based IR executed by the VM.

The IR models the paper's RV64 target plus the In-Fat Pointer ISA
extension (Table 3).  Functions use unlimited virtual registers; the
calling convention passes up to eight arguments (with paired bounds for
pointers), mirroring the paper's extended RISC-V convention.

Instruction categories (used by the Figure 11 accounting):

* ``base`` — instructions present in the unmodified ISA;
* ``promote`` — the ``promote`` instruction;
* ``ifp_arith`` — single-cycle IFP instructions (``ifpadd``, ``ifpidx``,
  ``ifpbnd``, ``ifpchk``, ``ifpextract``, ``ifpmd``, ``ifpmac``);
* ``bounds_ls`` — ``ldbnd``/``stbnd``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError, LinkError


class Op(enum.IntEnum):
    """IR opcodes.  Base ISA first, then the IFP extension."""

    # -- base ISA -------------------------------------------------------------
    LI = 1        #: dst = imm
    MV = 2        #: dst = a
    BIN = 3       #: dst = a <name> b   (name: add/sub/mul/...)
    BINI = 4      #: dst = a <name> imm
    TRUNC = 5     #: dst = wrap(a) to size/signed
    LOAD = 6      #: dst = mem[a + imm] (size, signed)
    STORE = 7     #: mem[a + imm] = b   (size)
    JMP = 8       #: goto target
    BZ = 9        #: if a == 0 goto target
    BNZ = 10      #: if a != 0 goto target
    CALL = 11     #: dst = name(args...)
    CALLPTR = 12  #: dst = (*a)(args...)
    RET = 13      #: return a (optional)
    FRAME = 14    #: dst = frame_base + imm (address of a stack slot)
    GLOB = 15     #: dst = address of global symbol `name`

    # -- In-Fat Pointer extension (paper Table 3) -------------------------------
    PROMOTE = 32     #: dst = promote(a); bounds[dst] set from metadata
    IFPMAC = 33      #: dst = MAC(key, a=md_addr, b=layout_ptr, imm=size)
    LDBND = 34       #: bounds[dst] = mem[a + imm] (16-byte spill format)
    STBND = 35       #: mem[a + imm] = bounds[b]
    IFPBND = 36      #: dst = a; bounds[dst] = [addr(a), addr(a) + imm_or_b)
    IFPADD = 37      #: dst = a + (b or imm), tag-maintaining pointer add
    IFPIDX = 38      #: dst = a with subobject index += imm
    IFPCHK = 39      #: dst = a, poison updated by access-size check of imm
    IFPEXTRACT = 40  #: dst = a (poison refreshed); bounds[dst] cleared
    IFPMD = 41       #: dst = addr(a) | (imm16 << 48) — install a tag

    @property
    def category(self) -> str:
        if self is Op.PROMOTE:
            return "promote"
        if self in (Op.LDBND, Op.STBND):
            return "bounds_ls"
        if self.value >= Op.PROMOTE:
            return "ifp_arith"
        return "base"


#: Mnemonics matching the paper's Table 3 where applicable.
MNEMONICS: Dict[Op, str] = {
    Op.LI: "li", Op.MV: "mv", Op.BIN: "bin", Op.BINI: "bini",
    Op.TRUNC: "trunc", Op.LOAD: "ld", Op.STORE: "sd", Op.JMP: "j",
    Op.BZ: "beqz", Op.BNZ: "bnez", Op.CALL: "call", Op.CALLPTR: "callr",
    Op.RET: "ret", Op.FRAME: "addi.sp", Op.GLOB: "la",
    Op.PROMOTE: "promote", Op.IFPMAC: "ifpmac", Op.LDBND: "ldbnd",
    Op.STBND: "stbnd", Op.IFPBND: "ifpbnd", Op.IFPADD: "ifpadd",
    Op.IFPIDX: "ifpidx", Op.IFPCHK: "ifpchk", Op.IFPEXTRACT: "ifpextract",
    Op.IFPMD: "ifpmd",
}


#: Integer codes for BIN/BINI variants.  Assigned once per program by
#: :func:`assign_bin_codes` (at compile or load time) so every execution
#: engine dispatches on a small int instead of the mnemonic string.
BIN_CODES: Dict[str, int] = {
    "add": 0, "sub": 1, "mul": 2, "div": 3, "rem": 4, "and": 5, "or": 6,
    "xor": 7, "shl": 8, "shr": 9, "sar": 10, "seq": 11, "sne": 12,
    "slt": 13, "sle": 14, "neg": 15, "lnot": 16, "bnot": 17,
    "pseq": 18, "psne": 19, "pslt": 20, "psle": 21, "psub": 22,
}


def assign_bin_codes(program: "IRProgram") -> None:
    """Assign :data:`BIN_CODES` to every BIN/BINI instruction, once.

    Ran by ``compile_source`` for compiled programs and by the VM loader
    for hand-built ones, so an unknown variant surfaces as a
    :class:`~repro.errors.LinkError` at link time — not on the first
    ``Machine`` construction of a campaign that builds thousands.
    """
    if program.codes_assigned:
        return
    for func in program.functions.values():
        for ins in func.instrs:
            if ins.op in (Op.BIN, Op.BINI):
                try:
                    ins.code = BIN_CODES[ins.name]
                except KeyError:
                    raise LinkError(
                        f"unknown BIN variant {ins.name!r}") from None
    program.codes_assigned = True


class Instr:
    """One IR instruction.

    A single flexible record keeps the interpreter dispatch simple and
    fast.  Field meaning depends on ``op`` (see :class:`Op` comments).
    """

    __slots__ = ("op", "dst", "a", "b", "imm", "size", "signed", "name",
                 "args", "target", "code")

    def __init__(self, op: Op, dst: int = -1, a: int = -1, b: int = -1,
                 imm: int = 0, size: int = 8, signed: bool = False,
                 name: str = "", args: Optional[List[int]] = None,
                 target: int = -1):
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b
        self.imm = imm
        self.size = size
        self.signed = signed
        self.name = name
        self.args = args if args is not None else []
        self.target = target
        self.code = -1  # integer op-variant code assigned by the VM loader

    def __repr__(self) -> str:
        return f"Instr({MNEMONICS[self.op]}, dst=r{self.dst})"


@dataclass
class LocalObjectInfo:
    """A stack object the instrumentation registered (for statistics)."""

    name: str
    slot: int            #: frame offset
    size: int
    scheme: str          #: 'local_offset' | 'global_table'
    layout_symbol: str   #: '' when no layout table


@dataclass
class IRFunction:
    """A compiled function body."""

    name: str
    param_regs: List[int]
    param_is_pointer: List[bool]
    num_regs: int
    frame_size: int
    instrs: List[Instr]
    ret_is_pointer: bool = False
    instrumented: bool = False
    local_objects: List[LocalObjectInfo] = field(default_factory=list)

    def dump(self) -> str:
        """Readable assembly listing (used by examples and docs)."""
        lines = [f"{self.name}: (regs={self.num_regs}, frame={self.frame_size})"]
        for index, ins in enumerate(self.instrs):
            parts = [f"  {index:4d}: {MNEMONICS[ins.op]:11s}"]
            if ins.dst >= 0:
                parts.append(f"r{ins.dst}")
            if ins.a >= 0:
                parts.append(f"r{ins.a}")
            if ins.b >= 0:
                parts.append(f"r{ins.b}")
            if ins.op in (Op.JMP, Op.BZ, Op.BNZ):
                parts.append(f"-> {ins.target}")
            if ins.name:
                parts.append(ins.name)
            if ins.imm:
                parts.append(f"#{ins.imm}")
            if ins.args:
                parts.append("(" + ", ".join(f"r{r}" for r in ins.args) + ")")
            lines.append(" ".join(parts))
        return "\n".join(lines)


@dataclass
class GlobalObject:
    """A global variable in the program image."""

    name: str
    size: int
    align: int
    init: bytes = b""
    #: True when some code takes the object's address (escapes), so the
    #: instrumentation must be able to register it (getptr pattern).
    needs_registration: bool = False
    layout_symbol: str = ""
    #: assigned by the linker
    address: int = 0
    #: extra bytes reserved after the object for appended metadata
    metadata_reserve: int = 0


@dataclass
class LayoutTableObject:
    """A compile-time generated layout table placed in the image."""

    symbol: str
    data: bytes
    address: int = 0


@dataclass
class IRProgram:
    """A complete compiled program, ready for the VM's loader."""

    functions: Dict[str, IRFunction]
    globals: Dict[str, GlobalObject]
    layout_tables: Dict[str, LayoutTableObject]
    entry: str = "main"
    instrumented: bool = False
    allocator: str = "glibc"
    #: which defense this image was built with: 'ifp'|'asan'|'mpx'|'none'
    defense: str = "none"
    #: True once :func:`assign_bin_codes` has run over this program
    codes_assigned: bool = False

    def function(self, name: str) -> IRFunction:
        func = self.functions.get(name)
        if func is None:
            raise CompileError(f"undefined function {name!r}")
        return func

    def total_instr_count(self) -> int:
        return sum(len(f.instrs) for f in self.functions.values())
