"""Juliet-style functional evaluation (paper Section 5.1).

The paper runs the NIST Juliet 1.3 C buffer-overflow categories; since the
suite itself cannot ship here, :mod:`repro.juliet.cases` *generates*
equivalent test programs: each case has a *good* (in-bounds) and a *bad*
(out-of-bounds) variant of the same code shape, across the same CWE
families (stack/heap-based overflow, underwrite, overread, underread) and
a set of Juliet-like data-flow variants.

Scoring, as in the paper: every bad variant must trap (detection), every
good variant must run to completion (no false positives).  Unlike the
paper — whose compiler optimised the intra-object cases away — the
intra-object (subobject) cases here execute and are detected.
"""

from repro.juliet.cases import JulietCase, generate_cases
from repro.juliet.runner import JulietReport, run_suite

__all__ = ["JulietCase", "generate_cases", "JulietReport", "run_suite"]
