"""Run the generated Juliet-style suite and score detections.

The paper's result: In-Fat Pointer "successfully detected all
vulnerabilities while passing all non-vulnerable cases" — i.e. 100 %
detection on bad variants, 0 false positives on good variants.  The
report reproduces that accounting per CWE family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler import CompilerOptions, compile_source
from repro.errors import SimTrap
from repro.juliet.cases import JulietCase, generate_cases
from repro.vm import Machine, MachineConfig


@dataclass
class CaseResult:
    case: JulietCase
    trapped: bool
    trap: Optional[str]

    @property
    def passed(self) -> bool:
        return self.trapped == self.case.expect_trap


@dataclass
class JulietReport:
    results: List[CaseResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def detected(self) -> int:
        return sum(1 for r in self.results if r.case.is_bad and r.trapped)

    @property
    def bad_total(self) -> int:
        return sum(1 for r in self.results if r.case.is_bad)

    @property
    def false_positives(self) -> int:
        return sum(1 for r in self.results
                   if not r.case.is_bad and r.trapped)

    @property
    def good_total(self) -> int:
        return sum(1 for r in self.results if not r.case.is_bad)

    @property
    def all_passed(self) -> bool:
        return all(r.passed for r in self.results)

    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if not r.passed]

    def by_cwe(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for result in self.results:
            row = out.setdefault(result.case.cwe, {
                "bad": 0, "detected": 0, "good": 0, "false_positive": 0})
            if result.case.is_bad:
                row["bad"] += 1
                row["detected"] += int(result.trapped)
            else:
                row["good"] += 1
                row["false_positive"] += int(result.trapped)
        return out

    def summary(self) -> str:
        lines = [
            f"Juliet-style functional evaluation: {self.total} cases",
            f"  detection: {self.detected}/{self.bad_total} bad cases "
            f"trapped",
            f"  false positives: {self.false_positives}/{self.good_total} "
            f"good cases",
            "",
            f"  {'CWE family':14s} {'bad':>5s} {'detected':>9s} "
            f"{'good':>5s} {'false+':>7s}",
        ]
        for cwe, row in sorted(self.by_cwe().items()):
            lines.append(
                f"  {cwe:14s} {row['bad']:5d} {row['detected']:9d} "
                f"{row['good']:5d} {row['false_positive']:7d}")
        return "\n".join(lines)


def run_case(case: JulietCase,
             options: Optional[CompilerOptions] = None,
             temporal: str = "off",
             engine: str = "auto") -> CaseResult:
    options = options or CompilerOptions.wrapped()
    program = compile_source(case.source, options)
    result = Machine(program, MachineConfig(
        max_instructions=2_000_000, temporal=temporal,
        engine=engine)).run()
    trap_name = type(result.trap).__name__ if result.trap else None
    return CaseResult(case, result.trap is not None, trap_name)


def run_suite(options: Optional[CompilerOptions] = None,
              cases: Optional[List[JulietCase]] = None,
              temporal: str = "off",
              engine: str = "auto") -> JulietReport:
    cases = cases if cases is not None else generate_cases()
    report = JulietReport()
    for case in cases:
        report.results.append(run_case(case, options, temporal=temporal,
                                       engine=engine))
    return report
