"""Juliet-style test-case generator.

Case space = CWE family x memory region x access direction/kind x flow
variant.  Families map to the Juliet categories the paper selected:

========  ===========================================
CWE-121   stack-based buffer overflow (write)
CWE-122   heap-based buffer overflow (write)
CWE-124   buffer underwrite
CWE-126   buffer over-read
CWE-127   buffer under-read
intra     intra-object overflow (the paper's Listing 1)
========  ===========================================

Flow variants mirror Juliet's numbering spirit:

* ``01`` straight-line index;
* ``02`` index flows through a function argument;
* ``03`` pointer flows through a global variable (forces promote);
* ``04`` loop-carried index (off-by-N in the loop bound);
* ``05`` index selected by a runtime condition.

Every case renders to a complete mini-C program whose ``main`` runs the
good path then (for bad variants) the vulnerable path, exactly like the
Juliet harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

#: buffer element count used throughout
_N = 10


@dataclass(frozen=True)
class JulietCase:
    """One generated test case."""

    name: str
    cwe: str
    region: str        #: 'stack' | 'heap' | 'global' | 'subobject'
    kind: str          #: 'write' | 'read'
    direction: str     #: 'over' | 'under'
    flow: str          #: '01'..'05'
    source: str
    is_bad: bool       #: True when the program performs the violation

    @property
    def expect_trap(self) -> bool:
        return self.is_bad


# -- program templates --------------------------------------------------------

_PRELUDE = """
int g_sink = 0;
int *g_ptr;

void use(int value) { g_sink += value; }
"""

_FLOW_BODIES = {
    # each body receives: DECL (buffer declaration + ptr setup), IDX
    "01": """
{DECL}
    int idx = {IDX};
    {ACCESS}
""",
    "02": """
{DECL}
    {HELPER_CALL}
""",
    "03": """
{DECL}
    g_ptr = buf;
    {GLOBAL_ACCESS}
""",
    "04": """
{DECL}
    int i;
    for (i = {LOOP_START}; {LOOP_COND}; i{LOOP_STEP}) {{
        int idx = i;
        {ACCESS}
    }}
""",
    "05": """
{DECL}
    int idx = {SAFE_IDX};
    if (g_sink == 0) {{ idx = {IDX}; }}
    {ACCESS}
""",
}

_HELPERS = {
    "write": """
void helper(int *p, int idx) { p[idx] = 42; }
""",
    "read": """
void helper(int *p, int idx) { use(p[idx]); }
""",
}


def _decl_for(region: str) -> str:
    if region == "stack":
        return f"    int buf[{_N}];\n    buf[0] = 1;"
    if region == "heap":
        return (f"    int *buf = (int*)malloc({_N} * sizeof(int));\n"
                f"    buf[0] = 1;")
    if region == "global":
        return "    int *buf = g_buffer;\n    buf[0] = 1;"
    if region == "subobject":
        return ("    struct Holder holder;\n"
                "    holder.after[0] = 7;\n"
                "    int *buf = holder.target;\n"
                "    buf[0] = 1;")
    raise ValueError(region)


def _index_for(direction: str, bad: bool) -> int:
    if not bad:
        return _N - 1 if direction == "over" else 0
    return _N if direction == "over" else -1


def _render(region: str, kind: str, direction: str, flow: str,
            bad: bool) -> str:
    access_expr = "buf[idx] = 42;" if kind == "write" else "use(buf[idx]);"
    global_idx = _index_for(direction, bad)
    parts: List[str] = []
    if region == "subobject":
        parts.append(f"struct Holder {{ int target[{_N}]; "
                     f"int after[{_N}]; }};\n")
    parts.append(_PRELUDE)
    if region == "global":
        parts.append(f"int g_buffer[{_N}];\n")
    if flow == "02":
        parts.append(_HELPERS[kind])
    body = _FLOW_BODIES[flow].format(
        DECL=_decl_for(region),
        IDX=_index_for(direction, bad),
        SAFE_IDX=_index_for(direction, False),
        ACCESS=access_expr,
        HELPER_CALL=f"helper(buf, {global_idx});",
        GLOBAL_ACCESS=("g_ptr[{0}] = 42;" if kind == "write"
                       else "use(g_ptr[{0}]);").format(global_idx),
        LOOP_START=0 if direction == "over" else (_N - 1),
        LOOP_COND=(f"i <= {global_idx}" if direction == "over"
                   else f"i >= {global_idx}"),
        LOOP_STEP="++" if direction == "over" else "--",
    )
    free_stmt = "    free(buf);\n" if region == "heap" else ""
    parts.append(f"""
int run_case(void) {{
{body}
{free_stmt}    return g_sink;
}}

int main(void) {{
    run_case();
    printf("done %d\\n", g_sink);
    return 0;
}}
""")
    return "".join(parts)


# -- temporal (lock-and-key) families ----------------------------------------
#
# CWE-415 (double free), CWE-416 (use after free), and the realloc-stale
# variant of CWE-416.  These are *opt-in* — ``generate_cases()`` does not
# include them, so spatial suite totals (and the fingerprints of
# pre-temporal campaign manifests) are unchanged.  Run them through
# ``generate_temporal_cases()`` with ``temporal="check"|"quarantine"``.

_UAF_ACCESS = {"read": "use(buf[1]);", "write": "buf[1] = 9;"}
_UAF_GACCESS = {"read": "use(g_ptr[1]);", "write": "g_ptr[1] = 9;"}
_UAF_HELPERS = {
    "read": "void helper(int *p) { use(p[1]); }\n",
    "write": "void helper(int *p) { p[1] = 9; }\n",
}
_FREE_HELPER = "void helper_free(int *p) { free(p); }\n"

#: oversize element count: 8192 ints = 32 KiB, above the subheap size
#: classes and the wrapped allocator's local-offset reach — both
#: allocators route such objects through the GLOBAL_TABLE scheme, so
#: ``generate_temporal_cases(big=True)`` exercises the third paper
#: scheme's temporal path
_N_BIG = 8192


def _heap_decl(count: int) -> str:
    return (f"    int *buf = (int*)malloc({count} * sizeof(int));\n"
            "    buf[0] = 1;")

#: (family, flow) -> (bad body, good body); {ACCESS}/{GACCESS} filled per
#: kind.  Flow numbering mirrors the spatial families: 01 straight-line,
#: 02 through a function argument, 03 through a global (forces promote),
#: 04 loop-carried, 05 runtime condition.
_UAF_BODIES = {
    "01": ("    free(buf);\n    {ACCESS}",
           "    {ACCESS}\n    free(buf);"),
    "02": ("    helper_free(buf);\n    helper(buf);",
           "    helper(buf);\n    helper_free(buf);"),
    "03": ("    g_ptr = buf;\n    free(buf);\n    {GACCESS}",
           "    g_ptr = buf;\n    {GACCESS}\n    free(buf);"),
    "04": ("    int i;\n"
           "    for (i = 0; i < 2; i++) {{\n"
           "        if (i == 1) {{ {ACCESS} }}\n"
           "        if (i == 0) {{ free(buf); }}\n"
           "    }}",
           "    int i;\n"
           "    for (i = 0; i < 2; i++) {{\n"
           "        if (i == 1) {{ {ACCESS} }}\n"
           "    }}\n"
           "    free(buf);"),
    "05": ("    if (g_sink == 0) {{ free(buf); }}\n    {ACCESS}",
           "    if (g_sink == 0) {{ {ACCESS} }}\n    free(buf);"),
}

_DFREE_BODIES = {
    "01": ("    free(buf);\n    free(buf);",
           "    free(buf);"),
    "02": ("    helper_free(buf);\n    free(buf);",
           "    helper_free(buf);"),
    "03": ("    g_ptr = buf;\n    free(g_ptr);\n    free(buf);",
           "    g_ptr = buf;\n    free(g_ptr);"),
    "04": ("    int i;\n"
           "    for (i = 0; i < 2; i++) {{ free(buf); }}",
           "    int i;\n"
           "    for (i = 0; i < 1; i++) {{ free(buf); }}"),
    "05": ("    free(buf);\n    if (g_sink == 0) {{ free(buf); }}",
           "    free(buf);\n    if (g_sink != 0) {{ free(buf); }}"),
}

_STALE_BODIES = {
    "01": ("    int *stale = buf;\n"
           f"    buf = (int*)realloc(buf, {4 * _N} * sizeof(int));\n"
           "    {ACCESS_STALE}\n"
           "    free(buf);",
           f"    buf = (int*)realloc(buf, {4 * _N} * sizeof(int));\n"
           "    {ACCESS}\n"
           "    free(buf);"),
    "03": ("    g_ptr = buf;\n"
           f"    buf = (int*)realloc(buf, {4 * _N} * sizeof(int));\n"
           "    {GACCESS}\n"
           "    free(buf);",
           f"    buf = (int*)realloc(buf, {4 * _N} * sizeof(int));\n"
           "    g_ptr = buf;\n"
           "    {GACCESS}\n"
           "    free(buf);"),
}

_STALE_ACCESS = {"read": "use(stale[1]);", "write": "stale[1] = 9;"}


def _render_temporal(family: str, kind: str, flow: str, bad: bool,
                     count: int = _N) -> str:
    parts: List[str] = [_PRELUDE]
    if flow == "02":
        parts.append(_FREE_HELPER)
        if family == "uaf":
            parts.append(_UAF_HELPERS[kind])
    if family == "uaf":
        body = _UAF_BODIES[flow][0 if bad else 1]
    elif family == "dfree":
        body = _DFREE_BODIES[flow][0 if bad else 1]
    else:
        body = _STALE_BODIES[flow][0 if bad else 1]
    body = body.format(
        ACCESS=_UAF_ACCESS[kind],
        GACCESS=_UAF_GACCESS[kind],
        ACCESS_STALE=_STALE_ACCESS[kind],
    )
    parts.append(f"""
int run_case(void) {{
{_heap_decl(count)}
{body}
    return g_sink;
}}

int main(void) {{
    run_case();
    printf("done %d\\n", g_sink);
    return 0;
}}
""")
    return "".join(parts)


def generate_temporal_cases(
        flows: Optional[List[str]] = None,
        big: bool = False) -> List[JulietCase]:
    """Generate the opt-in CWE-415/416 (temporal) case matrix.

    Bad cases are expected to trap when the machine runs with
    ``temporal="check"`` or ``"quarantine"`` (double frees additionally
    trap as ``InvalidFree`` even with temporal off — the allocators'
    structural headers catch them); good cases must stay transparent
    under every policy.

    ``big=True`` sizes every buffer above the subheap size classes so
    both allocators route it through the GLOBAL_TABLE scheme — the
    temporal-key path of the third paper scheme.
    """
    flows = flows or ["01", "02", "03", "04", "05"]
    count = _N_BIG if big else _N
    suffix = "_gt" if big else ""
    cases: List[JulietCase] = []
    for kind in ("read", "write"):
        for flow in flows:
            for bad in (False, True):
                tag = "bad" if bad else "good"
                cases.append(JulietCase(
                    name=f"CWE-416_heap_{kind}_uaf_v{flow}{suffix}_{tag}",
                    cwe="CWE-416", region="heap", kind=kind,
                    direction="uaf", flow=flow,
                    source=_render_temporal("uaf", kind, flow, bad,
                                            count),
                    is_bad=bad))
    for flow in flows:
        for bad in (False, True):
            tag = "bad" if bad else "good"
            cases.append(JulietCase(
                name=f"CWE-415_heap_free_dfree_v{flow}{suffix}_{tag}",
                cwe="CWE-415", region="heap", kind="free",
                direction="dfree", flow=flow,
                source=_render_temporal("dfree", "read", flow, bad,
                                        count),
                is_bad=bad))
    for kind in ("read", "write"):
        for flow in [f for f in flows if f in _STALE_BODIES]:
            for bad in (False, True):
                tag = "bad" if bad else "good"
                cases.append(JulietCase(
                    name=f"CWE-416_heap_{kind}_stale_v{flow}{suffix}"
                         f"_{tag}",
                    cwe="CWE-416", region="heap", kind=kind,
                    direction="stale", flow=flow,
                    source=_render_temporal("stale", kind, flow, bad,
                                            count),
                    is_bad=bad))
    return cases


_CWE_BY = {
    ("stack", "write", "over"): "CWE-121",
    ("heap", "write", "over"): "CWE-122",
    ("global", "write", "over"): "CWE-121",
    ("subobject", "write", "over"): "intra-object",
}


def _cwe(region: str, kind: str, direction: str) -> str:
    if kind == "read":
        return "CWE-126" if direction == "over" else "CWE-127"
    if direction == "under":
        return "CWE-124"
    return _CWE_BY.get((region, kind, direction), "CWE-121")


def generate_cases(regions: Optional[List[str]] = None,
                   flows: Optional[List[str]] = None) -> List[JulietCase]:
    """Generate the full good+bad case matrix."""
    regions = regions or ["stack", "heap", "global", "subobject"]
    flows = flows or ["01", "02", "03", "04", "05"]
    cases: List[JulietCase] = []
    for region in regions:
        for kind in ("write", "read"):
            for direction in ("over", "under"):
                if region == "subobject" and direction == "under":
                    # Under-reads of a leading member land before the
                    # object; covered by the stack/heap under cases.
                    continue
                for flow in flows:
                    for bad in (False, True):
                        name = (f"{_cwe(region, kind, direction)}_"
                                f"{region}_{kind}_{direction}_v{flow}_"
                                f"{'bad' if bad else 'good'}")
                        cases.append(JulietCase(
                            name=name,
                            cwe=_cwe(region, kind, direction),
                            region=region, kind=kind, direction=direction,
                            flow=flow,
                            source=_render(region, kind, direction, flow,
                                           bad),
                            is_bad=bad))
    return cases
