"""Bounded execution tracing for the VM.

The interpreter consults ``machine.tracer`` once per instruction; with no
tracer attached (the default) the cost is a single attribute test at call
setup.  Traces are ring-buffered so tracing a long run keeps the tail.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.compiler.ir import Instr, MNEMONICS, Op


@dataclass(frozen=True)
class TraceEvent:
    """One executed instruction."""

    function: str
    index: int
    op: int
    mnemonic: str
    dst: int
    operand_a: Optional[int]   #: value of register `a` before execution
    operand_b: Optional[int]

    def __str__(self) -> str:
        parts = [f"{self.function}:{self.index:<5d} {self.mnemonic:11s}"]
        if self.dst >= 0:
            parts.append(f"r{self.dst}")
        if self.operand_a is not None:
            parts.append(f"a=0x{self.operand_a:x}")
        if self.operand_b is not None:
            parts.append(f"b=0x{self.operand_b:x}")
        return " ".join(parts)


class Tracer:
    """Ring-buffered instruction tracer with optional filtering.

    ``only_ops`` restricts recording to an opcode subset (e.g. just the
    IFP extension); ``capacity`` bounds memory.
    """

    def __init__(self, capacity: int = 4096,
                 only_ops: Optional[set] = None):
        self.capacity = capacity
        self.only_ops = only_ops
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, function: str, index: int, ins: Instr,
               regs: List[int]) -> None:
        if self.only_ops is not None and ins.op not in self.only_ops:
            return
        operand_a = regs[ins.a] if 0 <= ins.a < len(regs) else None
        operand_b = regs[ins.b] if 0 <= ins.b < len(regs) else None
        self.events.append(TraceEvent(
            function, index, int(ins.op), MNEMONICS[ins.op], ins.dst,
            operand_a, operand_b))
        self.recorded += 1

    # -- queries -------------------------------------------------------------

    def tail(self, count: int = 20) -> List[TraceEvent]:
        return list(self.events)[-count:]

    def by_mnemonic(self, mnemonic: str) -> List[TraceEvent]:
        return [e for e in self.events if e.mnemonic == mnemonic]

    def format_tail(self, count: int = 20) -> str:
        return "\n".join(str(e) for e in self.tail(count))


#: ops worth watching when debugging IFP behaviour
IFP_OPS = {Op.PROMOTE, Op.IFPADD, Op.IFPIDX, Op.IFPBND, Op.IFPCHK,
           Op.IFPEXTRACT, Op.IFPMD, Op.IFPMAC, Op.LDBND, Op.STBND}


def attach_tracer(machine, capacity: int = 4096,
                  ifp_only: bool = False) -> Tracer:
    """Create a tracer and attach it to a machine (before ``run``)."""
    tracer = Tracer(capacity, IFP_OPS if ifp_only else None)
    machine.tracer = tracer
    return tracer
