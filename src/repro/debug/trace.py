"""Bounded execution tracing for the VM.

The interpreter consults ``machine.tracer`` once per instruction; with no
tracer attached (the default) the cost is a single attribute test at call
setup.  Traces are ring-buffered so tracing a long run keeps the tail.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.compiler.ir import Instr, MNEMONICS, Op


@dataclass(frozen=True)
class TraceEvent:
    """One executed instruction."""

    function: str
    index: int
    op: int
    mnemonic: str
    dst: int
    operand_a: Optional[int]   #: value of register `a` before execution
    operand_b: Optional[int]

    def __str__(self) -> str:
        parts = [f"{self.function}:{self.index:<5d} {self.mnemonic:11s}"]
        if self.dst >= 0:
            parts.append(f"r{self.dst}")
        if self.operand_a is not None:
            parts.append(f"a=0x{self.operand_a:x}")
        if self.operand_b is not None:
            parts.append(f"b=0x{self.operand_b:x}")
        return " ".join(parts)


class Tracer:
    """Ring-buffered instruction tracer with optional filtering.

    ``only_ops`` restricts recording to an opcode subset (e.g. just the
    IFP extension); ``capacity`` bounds memory.  ``capacity=0`` is the
    counting-only mode: matching instructions bump :attr:`recorded` but
    no event objects are built or kept.  Negative capacities are
    rejected.  The ring keeps the *tail* of the run: once full, each new
    event evicts the oldest one, so ``events`` is always the most recent
    ``capacity`` matches in execution order.
    """

    def __init__(self, capacity: int = 4096,
                 only_ops: Optional[set] = None):
        if capacity < 0:
            raise ValueError(f"tracer capacity must be >= 0, "
                             f"got {capacity}")
        self.capacity = capacity
        self.only_ops = only_ops
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, function: str, index: int, ins: Instr,
               regs: List[int]) -> None:
        if self.only_ops is not None and ins.op not in self.only_ops:
            return
        self.recorded += 1
        if self.capacity == 0:
            return
        operand_a = regs[ins.a] if 0 <= ins.a < len(regs) else None
        operand_b = regs[ins.b] if 0 <= ins.b < len(regs) else None
        self.events.append(TraceEvent(
            function, index, int(ins.op), MNEMONICS[ins.op], ins.dst,
            operand_a, operand_b))

    # -- queries -------------------------------------------------------------

    def snapshot(self) -> tuple:
        """Consistent point-in-time copy of the ring, oldest first.

        Safe to call while the tracer is still recording (e.g. from an
        observability sink mid-run): the returned tuple is immutable and
        detached from the live deque.
        """
        return tuple(self.events)

    def tail(self, count: int = 20) -> List[TraceEvent]:
        """The most recent ``count`` events (all of them if fewer);
        ``count <= 0`` returns an empty list."""
        if count <= 0:
            return []
        return list(self.snapshot()[-count:])

    def by_mnemonic(self, mnemonic: str) -> List[TraceEvent]:
        return [e for e in self.snapshot() if e.mnemonic == mnemonic]

    def format_tail(self, count: int = 20) -> str:
        return "\n".join(str(e) for e in self.tail(count))


#: ops worth watching when debugging IFP behaviour
IFP_OPS = {Op.PROMOTE, Op.IFPADD, Op.IFPIDX, Op.IFPBND, Op.IFPCHK,
           Op.IFPEXTRACT, Op.IFPMD, Op.IFPMAC, Op.LDBND, Op.STBND}


def attach_tracer(machine, capacity: int = 4096,
                  ifp_only: bool = False) -> Tracer:
    """Create a tracer and attach it to a machine (before ``run``)."""
    tracer = Tracer(capacity, IFP_OPS if ifp_only else None)
    machine.tracer = tracer
    return tracer
