"""Tagged-pointer anatomy: decode and dry-run a pointer's promote."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MemoryFault
from repro.ifp.bounds import Bounds
from repro.ifp.tag import Scheme, address_of, unpack_tag


@dataclass
class PointerAnatomy:
    """Everything knowable about one 64-bit pointer value."""

    value: int
    address: int
    poison: str
    scheme: str
    payload: int
    granule_offset: Optional[int] = None
    subobject_index: Optional[int] = None
    register_index: Optional[int] = None
    table_index: Optional[int] = None
    promote_outcome: Optional[str] = None
    bounds: Optional[Bounds] = None
    narrowed: Optional[bool] = None

    def describe(self) -> str:
        lines = [
            f"pointer 0x{self.value:016x}",
            f"  address          0x{self.address:012x}",
            f"  poison           {self.poison}",
            f"  scheme           {self.scheme}",
        ]
        if self.granule_offset is not None:
            lines.append(f"  granule offset   {self.granule_offset} "
                         f"(metadata {self.granule_offset * 16} bytes up)")
        if self.register_index is not None:
            lines.append(f"  control register {self.register_index}")
        if self.table_index is not None:
            lines.append(f"  table index      {self.table_index}")
        if self.subobject_index is not None:
            lines.append(f"  subobject index  {self.subobject_index}")
        if self.promote_outcome is not None:
            lines.append(f"  promote          {self.promote_outcome}")
        if self.bounds is not None:
            lines.append(f"  bounds           {self.bounds} "
                         f"({self.bounds.size} bytes)"
                         + (" [narrowed]" if self.narrowed else ""))
        return "\n".join(lines)


def explain_pointer(machine, pointer: int) -> PointerAnatomy:
    """Decode a pointer and dry-run its promote on ``machine``.

    The dry run uses the real IFP unit but rolls back its statistics, so
    explaining pointers does not perturb an experiment.
    """
    tag = unpack_tag(pointer)
    anatomy = PointerAnatomy(
        value=pointer,
        address=address_of(pointer),
        poison=tag.poison.name,
        scheme=tag.scheme.name,
        payload=tag.payload,
    )
    config = machine.config.ifp
    if tag.scheme is Scheme.LOCAL_OFFSET:
        anatomy.granule_offset = tag.local_granule_offset(config)
        anatomy.subobject_index = tag.local_subobject_index(config)
    elif tag.scheme is Scheme.SUBHEAP:
        anatomy.register_index = tag.subheap_register_index(config)
        anatomy.subobject_index = tag.subheap_subobject_index(config)
    elif tag.scheme is Scheme.GLOBAL_TABLE:
        anatomy.table_index = tag.global_table_index(config)

    import copy
    saved_stats = copy.deepcopy(machine.ifp.stats)
    saved_obs = machine.ifp.obs
    machine.ifp.obs = None  # the dry run must not emit telemetry
    try:
        result = machine.ifp.promote(pointer)
        anatomy.promote_outcome = result.outcome.value
        anatomy.bounds = result.bounds
        anatomy.narrowed = result.narrowed
    except MemoryFault:
        anatomy.promote_outcome = "metadata access faulted"
    finally:
        machine.ifp.stats = saved_stats
        machine.ifp.obs = saved_obs
    return anatomy
