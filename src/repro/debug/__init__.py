"""Debugging aids: execution tracing and tagged-pointer anatomy.

* :class:`Tracer` — attach to a machine to record a bounded window of
  executed instructions (with register values for the interesting
  operands), promote outcomes, and detection events;
* :func:`explain_pointer` — decode a 64-bit pointer's tag fields and
  dry-run its metadata lookup, producing the human-readable story of
  what a ``promote`` of that pointer would do.
"""

from repro.debug.trace import Tracer, TraceEvent, attach_tracer
from repro.debug.anatomy import explain_pointer, PointerAnatomy

__all__ = ["Tracer", "TraceEvent", "attach_tracer",
           "explain_pointer", "PointerAnatomy"]
