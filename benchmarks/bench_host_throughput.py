"""Host-throughput benchmark: fastpath vs reference guest-MIPS.

For every selected ``(workload, config)`` cell this script

1. compiles the workload once,
2. runs it under **all three** engines (reference, block-fused
   fastpath, whole-function superblock) and asserts byte-identical
   observables (guest output, exit code, trap, and every ``RunStats``
   field including the IFP unit's cache counters) — the differential
   gate that backs the compiled engines' equivalence contract, and
3. times each engine over ``--repeats`` fresh runs (best-of), reporting
   simulated guest instructions per host second (guest-MIPS) and the
   per-engine speedup over the reference.

Timed subheap cells additionally get ``subheap_vs_baseline_ratio`` —
baseline-config MIPS over subheap-config MIPS for the same workload
under the best compiled engine, the host-side cost factor of subheap
protection.  ``--max-subheap-gap`` turns that ratio into a gate.

Results land in ``BENCH_host_throughput.json`` (repro.obs schema v1).
With ``--baseline`` the run is additionally gated against a committed
record: any cell whose speedup drops more than ``--max-regression``
below its baseline speedup fails the run.  Speedup ratios, not raw
MIPS, are compared across hosts — absolute MIPS varies with the CI
machine, the ratio of two interpreters on the same machine does not.

Usage::

    PYTHONPATH=src python benchmarks/bench_host_throughput.py
    PYTHONPATH=src python benchmarks/bench_host_throughput.py \\
        --workloads treeadd,em3d,mst,coremark --configs baseline,subheap \\
        --baseline benchmarks/baselines/host_throughput.json
    PYTHONPATH=src python benchmarks/bench_host_throughput.py --verify-only
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.compiler import compile_source
from repro.eval.configs import CONFIG_NAMES, build_machine_config, \
    build_options
from repro.obs.metrics import write_bench
from repro.vm import Machine
from repro.workloads import WORKLOADS

DEFAULT_WORKLOADS = "treeadd,em3d,mst,coremark"
DEFAULT_CONFIGS = "baseline,subheap"


def _observables(result) -> Tuple:
    trap = result.trap
    return (result.exit_code, result.output,
            (type(trap).__name__, str(trap)) if trap else None,
            dataclasses.asdict(result.stats))


def _run_once(program, machine_config, engine: str):
    machine = Machine(program, replace(machine_config, engine=engine))
    start = time.perf_counter()
    result = machine.run()
    elapsed = time.perf_counter() - start
    return result, elapsed


#: compiled engines timed and differentially verified per cell
_FAST_ENGINES = ("fastpath", "superblock")


def bench_cell(workload: str, config: str, scale: int, repeats: int,
               verify_only: bool, temporal: str = "off") -> Dict:
    """Verify and time one (workload, config) cell.

    Both compiled engines ("fastpath" — block-fused only — and
    "superblock" — whole-function translation) are verified against the
    reference and timed; the cell is ``identical`` only when every
    engine agrees byte-for-byte.

    All cell fields are numeric (the repro.obs schema forbids strings
    in metrics); the "<workload>/<config>" key carries the identity.
    """
    program = compile_source(WORKLOADS[workload].source(scale),
                             build_options(config))
    machine_config = replace(build_machine_config(config),
                             temporal=temporal)

    # Differential gate: one verified run per engine per cell, always.
    ref_result, ref_seconds = _run_once(program, machine_config,
                                        "reference")
    expected = _observables(ref_result)
    seconds = {"reference": ref_seconds}
    identical = True
    for engine in _FAST_ENGINES:
        result, elapsed = _run_once(program, machine_config, engine)
        seconds[engine] = elapsed
        if _observables(result) != expected:
            identical = False
    cell = {
        "identical": 1 if identical else 0,
        "instructions": ref_result.stats.total_instructions,
    }
    if not identical or verify_only:
        return cell

    # Timing: best-of over fresh machines (each pays translation once,
    # like every real harness run does).
    for _ in range(max(0, repeats - 1)):
        for engine in ("reference",) + _FAST_ENGINES:
            _, elapsed = _run_once(program, machine_config, engine)
            seconds[engine] = min(seconds[engine], elapsed)
    instructions = cell["instructions"]
    for engine in ("reference",) + _FAST_ENGINES:
        cell[f"{engine}_seconds"] = round(seconds[engine], 6)
        cell[f"{engine}_mips"] = round(
            instructions / seconds[engine] / 1e6, 4)
    cell["speedup"] = round(seconds["reference"] / seconds["fastpath"], 4)
    cell["superblock_speedup"] = round(
        seconds["reference"] / seconds["superblock"], 4)
    return cell


def add_subheap_ratios(cells: Dict[str, Dict]) -> List[float]:
    """Stamp ``subheap_vs_baseline_ratio`` into every timed subheap cell.

    The ratio is baseline-config MIPS over subheap-config MIPS for the
    same workload under the best compiled engine — the host-side cost
    factor of subheap protection the ISSUE's gap gate bounds.  Returns
    the ratios stamped.
    """
    ratios: List[float] = []
    for key, cell in cells.items():
        workload, _, config = key.partition("/")
        if config != "subheap" or "superblock_mips" not in cell:
            continue
        base = cells.get(f"{workload}/baseline")
        if not base or "superblock_mips" not in base:
            continue
        best_sub = max(cell["superblock_mips"], cell["fastpath_mips"])
        best_base = max(base["superblock_mips"], base["fastpath_mips"])
        ratio = round(best_base / best_sub, 4)
        cell["subheap_vs_baseline_ratio"] = ratio
        ratios.append(ratio)
    return ratios


def check_baseline(cells: Dict[str, Dict], baseline_path: str,
                   max_regression: float) -> List[str]:
    """Compare cell speedups against a committed baseline record."""
    with open(baseline_path) as handle:
        document = json.load(handle)
    baseline_cells = document["metrics"]["cells"]
    failures = []
    for metric in ("speedup", "superblock_speedup"):
        baseline = {key: cell[metric]
                    for key, cell in baseline_cells.items()
                    if metric in cell}
        for key, cell in cells.items():
            if metric not in cell:
                continue
            expected = baseline.get(key)
            if expected is None:
                continue
            floor = expected * (1.0 - max_regression)
            if cell[metric] < floor:
                failures.append(
                    f"{key}: {metric} {cell[metric]:.2f}x fell below "
                    f"{floor:.2f}x (baseline {expected:.2f}x - "
                    f"{max_regression:.0%})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fastpath vs reference host-throughput benchmark "
                    "with a built-in byte-identity differential gate.")
    parser.add_argument("--workloads", default=DEFAULT_WORKLOADS,
                        help=f"comma list (default {DEFAULT_WORKLOADS})")
    parser.add_argument("--configs", default=DEFAULT_CONFIGS,
                        help=f"comma list (default {DEFAULT_CONFIGS})")
    parser.add_argument("--scale", type=int, default=2,
                        help="workload scale factor (default 2)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing runs per engine, best-of "
                             "(default 2)")
    parser.add_argument("--verify-only", action="store_true",
                        help="run the byte-identity differential gate "
                             "only; skip timing")
    parser.add_argument("--temporal", default="off",
                        choices=("off", "check", "quarantine"),
                        help="temporal lock-and-key policy armed on "
                             "every cell's machine (default off)")
    parser.add_argument("--out-dir", default=None,
                        help="directory for BENCH_host_throughput.json "
                             "(default: $REPRO_BENCH_DIR or cwd)")
    parser.add_argument("--baseline", metavar="JSON", default=None,
                        help="committed BENCH record to gate speedup "
                             "regressions against")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional speedup drop vs the "
                             "baseline (default 0.20)")
    parser.add_argument("--max-subheap-gap", type=float, default=None,
                        metavar="RATIO",
                        help="fail when any workload's subheap-config "
                             "MIPS falls more than RATIO times below "
                             "its baseline-config MIPS (the paper-"
                             "parity target is 1.5; unset disables "
                             "the gate)")
    args = parser.parse_args(argv)

    workloads = [w.strip() for w in args.workloads.split(",")
                 if w.strip()]
    configs = [c.strip() for c in args.configs.split(",") if c.strip()]
    unknown = [w for w in workloads if w not in WORKLOADS]
    if unknown:
        parser.error(f"unknown workload(s): {', '.join(unknown)}")
    unknown = [c for c in configs if c not in CONFIG_NAMES]
    if unknown:
        parser.error(f"unknown configuration(s): {', '.join(unknown)}")

    cells: Dict[str, Dict] = {}
    divergent: List[str] = []
    for workload in workloads:
        for config in configs:
            cell = bench_cell(workload, config, args.scale,
                              args.repeats, args.verify_only,
                              temporal=args.temporal)
            key = f"{workload}/{config}"
            cells[key] = cell
            if not cell["identical"]:
                divergent.append(key)
                print(f"  {key:24s} DIVERGED — engines disagree")
            elif args.verify_only:
                print(f"  {key:24s} identical "
                      f"({cell['instructions']:,} instructions)")
            else:
                print(f"  {key:24s} ref {cell['reference_mips']:6.2f} "
                      f"MIPS  fast {cell['fastpath_mips']:6.2f} MIPS  "
                      f"super {cell['superblock_mips']:6.2f} MIPS  "
                      f"speedup {cell['speedup']:5.2f}x/"
                      f"{cell['superblock_speedup']:5.2f}x")

    ratios = add_subheap_ratios(cells)
    speedups = [c["speedup"] for c in cells.values() if "speedup" in c]
    super_speedups = [c["superblock_speedup"] for c in cells.values()
                      if "superblock_speedup" in c]
    summary: Dict[str, object] = {
        "cells_verified": sum(1 for c in cells.values()
                              if c["identical"]),
        "cells_divergent": len(divergent),
    }

    def _geomean(values: List[float]) -> float:
        return round(math.exp(sum(math.log(v) for v in values)
                              / len(values)), 4)

    if speedups:
        summary.update({
            "geomean_speedup": _geomean(speedups),
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
            "geomean_superblock_speedup": _geomean(super_speedups),
            "min_superblock_speedup": min(super_speedups),
            "max_superblock_speedup": max(super_speedups),
        })
        print(f"geomean speedup {summary['geomean_speedup']:.2f}x "
              f"(min {summary['min_speedup']:.2f}x, "
              f"max {summary['max_speedup']:.2f}x); superblock "
              f"{summary['geomean_superblock_speedup']:.2f}x")
    if ratios:
        summary["max_subheap_gap"] = max(ratios)
        summary["geomean_subheap_gap"] = _geomean(ratios)
        print(f"subheap/baseline MIPS gap: geomean "
              f"{summary['geomean_subheap_gap']:.2f}x, max "
              f"{summary['max_subheap_gap']:.2f}x")

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
    path = write_bench(
        "host_throughput",
        {"workloads": ",".join(workloads), "configs": ",".join(configs),
         "scale": str(args.scale), "repeats": str(args.repeats),
         "verify_only": str(args.verify_only),
         "temporal": args.temporal},
        {"cells": cells, "summary": summary},
        directory=args.out_dir)
    print(f"bench record written to {path}")

    if divergent:
        print(f"DIFFERENTIAL GATE FAILED: {', '.join(divergent)}",
              file=sys.stderr)
        return 1
    if args.max_subheap_gap is not None and ratios:
        over = [f"{key}: gap "
                f"{cell['subheap_vs_baseline_ratio']:.2f}x"
                for key, cell in cells.items()
                if cell.get("subheap_vs_baseline_ratio", 0.0)
                > args.max_subheap_gap]
        if over:
            print(f"SUBHEAP GAP GATE FAILED (limit "
                  f"{args.max_subheap_gap:.2f}x): {', '.join(over)}",
                  file=sys.stderr)
            return 1
        print(f"subheap gap gate passed "
              f"(limit {args.max_subheap_gap:.2f}x)")
    if args.baseline and speedups:
        failures = check_baseline(cells, args.baseline,
                                  args.max_regression)
        if failures:
            for line in failures:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"baseline gate passed "
              f"(allowed drop {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
