"""Host-throughput benchmark: fastpath vs reference guest-MIPS.

For every selected ``(workload, config)`` cell this script

1. compiles the workload once,
2. runs it under **both** engines and asserts byte-identical
   observables (guest output, exit code, trap, and every ``RunStats``
   field including the IFP unit's cache counters) — the differential
   gate that backs the fastpath's equivalence contract, and
3. times each engine over ``--repeats`` fresh runs (best-of), reporting
   simulated guest instructions per host second (guest-MIPS) and the
   fastpath/reference speedup.

Results land in ``BENCH_host_throughput.json`` (repro.obs schema v1).
With ``--baseline`` the run is additionally gated against a committed
record: any cell whose speedup drops more than ``--max-regression``
below its baseline speedup fails the run.  Speedup ratios, not raw
MIPS, are compared across hosts — absolute MIPS varies with the CI
machine, the ratio of two interpreters on the same machine does not.

Usage::

    PYTHONPATH=src python benchmarks/bench_host_throughput.py
    PYTHONPATH=src python benchmarks/bench_host_throughput.py \\
        --workloads treeadd,em3d,mst,coremark --configs baseline,subheap \\
        --baseline benchmarks/baselines/host_throughput.json
    PYTHONPATH=src python benchmarks/bench_host_throughput.py --verify-only
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.compiler import compile_source
from repro.eval.configs import CONFIG_NAMES, build_machine_config, \
    build_options
from repro.obs.metrics import write_bench
from repro.vm import Machine
from repro.workloads import WORKLOADS

DEFAULT_WORKLOADS = "treeadd,em3d,mst,coremark"
DEFAULT_CONFIGS = "baseline,subheap"


def _observables(result) -> Tuple:
    trap = result.trap
    return (result.exit_code, result.output,
            (type(trap).__name__, str(trap)) if trap else None,
            dataclasses.asdict(result.stats))


def _run_once(program, machine_config, engine: str):
    machine = Machine(program, replace(machine_config, engine=engine))
    start = time.perf_counter()
    result = machine.run()
    elapsed = time.perf_counter() - start
    return result, elapsed


def bench_cell(workload: str, config: str, scale: int, repeats: int,
               verify_only: bool) -> Dict:
    """Verify and time one (workload, config) cell.

    All cell fields are numeric (the repro.obs schema forbids strings
    in metrics); the "<workload>/<config>" key carries the identity.
    """
    program = compile_source(WORKLOADS[workload].source(scale),
                             build_options(config))
    machine_config = build_machine_config(config)

    # Differential gate: one verified pair per cell, always.
    ref_result, ref_seconds = _run_once(program, machine_config,
                                        "reference")
    fast_result, fast_seconds = _run_once(program, machine_config,
                                          "fastpath")
    identical = _observables(ref_result) == _observables(fast_result)
    cell = {
        "identical": 1 if identical else 0,
        "instructions": ref_result.stats.total_instructions,
    }
    if not identical or verify_only:
        return cell

    # Timing: best-of over fresh machines (each pays translation once,
    # like every real harness run does).
    for _ in range(max(0, repeats - 1)):
        _, seconds = _run_once(program, machine_config, "reference")
        ref_seconds = min(ref_seconds, seconds)
        _, seconds = _run_once(program, machine_config, "fastpath")
        fast_seconds = min(fast_seconds, seconds)
    instructions = cell["instructions"]
    cell.update({
        "reference_seconds": round(ref_seconds, 6),
        "fastpath_seconds": round(fast_seconds, 6),
        "reference_mips": round(instructions / ref_seconds / 1e6, 4),
        "fastpath_mips": round(instructions / fast_seconds / 1e6, 4),
        "speedup": round(ref_seconds / fast_seconds, 4),
    })
    return cell


def check_baseline(cells: Dict[str, Dict], baseline_path: str,
                   max_regression: float) -> List[str]:
    """Compare cell speedups against a committed baseline record."""
    with open(baseline_path) as handle:
        document = json.load(handle)
    baseline = {key: cell["speedup"]
                for key, cell in document["metrics"]["cells"].items()
                if "speedup" in cell}
    failures = []
    for key, cell in cells.items():
        if "speedup" not in cell:
            continue
        expected = baseline.get(key)
        if expected is None:
            continue
        floor = expected * (1.0 - max_regression)
        if cell["speedup"] < floor:
            failures.append(
                f"{key}: speedup {cell['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {expected:.2f}x - "
                f"{max_regression:.0%})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fastpath vs reference host-throughput benchmark "
                    "with a built-in byte-identity differential gate.")
    parser.add_argument("--workloads", default=DEFAULT_WORKLOADS,
                        help=f"comma list (default {DEFAULT_WORKLOADS})")
    parser.add_argument("--configs", default=DEFAULT_CONFIGS,
                        help=f"comma list (default {DEFAULT_CONFIGS})")
    parser.add_argument("--scale", type=int, default=2,
                        help="workload scale factor (default 2)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing runs per engine, best-of "
                             "(default 2)")
    parser.add_argument("--verify-only", action="store_true",
                        help="run the byte-identity differential gate "
                             "only; skip timing")
    parser.add_argument("--out-dir", default=None,
                        help="directory for BENCH_host_throughput.json "
                             "(default: $REPRO_BENCH_DIR or cwd)")
    parser.add_argument("--baseline", metavar="JSON", default=None,
                        help="committed BENCH record to gate speedup "
                             "regressions against")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional speedup drop vs the "
                             "baseline (default 0.20)")
    args = parser.parse_args(argv)

    workloads = [w.strip() for w in args.workloads.split(",")
                 if w.strip()]
    configs = [c.strip() for c in args.configs.split(",") if c.strip()]
    unknown = [w for w in workloads if w not in WORKLOADS]
    if unknown:
        parser.error(f"unknown workload(s): {', '.join(unknown)}")
    unknown = [c for c in configs if c not in CONFIG_NAMES]
    if unknown:
        parser.error(f"unknown configuration(s): {', '.join(unknown)}")

    cells: Dict[str, Dict] = {}
    divergent: List[str] = []
    for workload in workloads:
        for config in configs:
            cell = bench_cell(workload, config, args.scale,
                              args.repeats, args.verify_only)
            key = f"{workload}/{config}"
            cells[key] = cell
            if not cell["identical"]:
                divergent.append(key)
                print(f"  {key:24s} DIVERGED — engines disagree")
            elif args.verify_only:
                print(f"  {key:24s} identical "
                      f"({cell['instructions']:,} instructions)")
            else:
                print(f"  {key:24s} ref {cell['reference_mips']:6.2f} "
                      f"MIPS  fast {cell['fastpath_mips']:6.2f} MIPS  "
                      f"speedup {cell['speedup']:5.2f}x")

    speedups = [c["speedup"] for c in cells.values() if "speedup" in c]
    summary: Dict[str, object] = {
        "cells_verified": sum(1 for c in cells.values()
                              if c["identical"]),
        "cells_divergent": len(divergent),
    }
    if speedups:
        summary.update({
            "geomean_speedup": round(
                math.exp(sum(math.log(s) for s in speedups)
                         / len(speedups)), 4),
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
        })
        print(f"geomean speedup {summary['geomean_speedup']:.2f}x "
              f"(min {summary['min_speedup']:.2f}x, "
              f"max {summary['max_speedup']:.2f}x)")

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
    path = write_bench(
        "host_throughput",
        {"workloads": ",".join(workloads), "configs": ",".join(configs),
         "scale": str(args.scale), "repeats": str(args.repeats),
         "verify_only": str(args.verify_only)},
        {"cells": cells, "summary": summary},
        directory=args.out_dir)
    print(f"bench record written to {path}")

    if divergent:
        print(f"DIFFERENTIAL GATE FAILED: {', '.join(divergent)}",
              file=sys.stderr)
        return 1
    if args.baseline and speedups:
        failures = check_baseline(cells, args.baseline,
                                  args.max_regression)
        if failures:
            for line in failures:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"baseline gate passed "
              f"(allowed drop {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
