"""Throughput scaling of the sharded campaign engine (repro.par).

Runs the same fixed-seed fuzzing campaign at ``--jobs`` 1, 2 and 4 and
records programs/second per worker count, plus the pool's own
utilization accounting (steals, busy fractions).  Two properties are
asserted:

* **determinism** — every worker count produces the same merged
  counters (the byte-identical guarantee, minus timing);
* **scaling** — on a machine with at least 4 CPUs, 4 workers must
  deliver at least 2x the sequential throughput.  On smaller hosts
  (CI containers here expose a single core, where any speedup is
  physically impossible) the numbers are recorded but not gated.
"""

import os

import pytest

from repro.obs.metrics import write_bench
from repro.par.engine import parallel_fuzz, plan_fuzz
from repro.par.merge import canonical_metrics

_SEED = 0
_ITERATIONS = 24
_CONFIGS = ["baseline", "wrapped"]
_JOBS = (1, 2, 4)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:      # non-Linux
        return os.cpu_count() or 1


@pytest.mark.benchmark(group="par")
def test_parallel_scaling(benchmark, tmp_path):
    runs = {}

    def campaign(jobs: int):
        plan = plan_fuzz(
            _ITERATIONS, _SEED, configs=_CONFIGS,
            corpus_dir=str(tmp_path / f"corpus-j{jobs}"), jobs=jobs)
        return parallel_fuzz(plan, jobs=jobs)

    def sweep():
        for jobs in _JOBS:
            runs[jobs] = campaign(jobs)
        return runs

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for jobs, (stats, outcome) in runs.items():
        assert outcome.ok, outcome.summary()
        assert stats.ok, stats.summary()

    # determinism gate: merged counters identical across worker counts
    reference = canonical_metrics(runs[1][0].metrics())
    for jobs in _JOBS[1:]:
        assert canonical_metrics(runs[jobs][0].metrics()) \
            == reference, f"--jobs {jobs} diverged from --jobs 1"

    throughput = {
        jobs: stats.programs / (outcome.wall_seconds or 1e-9)
        for jobs, (stats, outcome) in runs.items()}
    cpus = _cpu_count()
    for jobs in _JOBS:
        print(f"\n  jobs={jobs}: {throughput[jobs]:.2f} programs/s "
              f"({runs[jobs][1].wall_seconds:.1f}s wall, "
              f"{runs[jobs][1].steals} steals)")
    speedup4 = throughput[4] / (throughput[1] or 1e-9)
    print(f"  speedup at 4 workers: {speedup4:.2f}x ({cpus} CPUs)")
    if cpus >= 4:
        assert speedup4 >= 2.0, (
            f"expected >=2x throughput at 4 workers on a {cpus}-CPU "
            f"host, measured {speedup4:.2f}x")

    path = write_bench(
        "parallel_scaling",
        {"seed": _SEED, "iterations": _ITERATIONS,
         "configs": ",".join(_CONFIGS), "cpus": cpus},
        {
            "throughput_programs_per_second": {
                str(jobs): throughput[jobs] for jobs in _JOBS},
            "speedup_4_workers": speedup4,
            "pool": {str(jobs): runs[jobs][1].utilization_metrics()
                     for jobs in _JOBS},
        })
    print(f"  bench record: {path}")
