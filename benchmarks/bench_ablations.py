"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation flips one IFP design decision and measures its effect on a
small representative workload set, quantifying *why* the paper's design
is shaped the way it is:

* three metadata schemes vs. global-table-only (tag-bit pressure and
  table-capacity pressure);
* layout-table narrowing on/off (subobject detection vs. walker cost);
* metadata MAC on/off (tamper detection vs. promote latency);
* local-offset granule sizing;
* callee-saved bounds spills on/off.
"""

import dataclasses

import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.eval.harness import run_workload
from repro.ifp.config import IFPConfig
from repro.vm import Machine, MachineConfig
from repro.workloads import get

_ABLATION_WORKLOADS = ("health", "treeadd", "anagram")


def _run(workload_name, options):
    workload = get(workload_name)
    program = compile_source(workload.source(1), options)
    config = MachineConfig(ifp=options.ifp,
                           max_instructions=150_000_000)
    result = Machine(program, config).run()
    assert result.ok, result.trap
    return result


@pytest.mark.benchmark(group="ablation")
def test_ablation_single_scheme(benchmark):
    """Global-table-only design: every object burns a table row, so the
    4096-row capacity becomes the binding constraint — the reason the
    paper builds three complementary schemes."""
    gt_only = IFPConfig(schemes_enabled=("global_table",))
    options = CompilerOptions.wrapped(ifp=gt_only)

    def run():
        return _run("anagram", options)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    gt_lookups = result.stats.ifp.lookups_global_table
    full = _run("anagram", CompilerOptions.wrapped())
    print(f"\nglobal-table-only: {gt_lookups} GT lookups vs "
          f"{full.stats.ifp.lookups_global_table} in the full design")
    assert gt_lookups > full.stats.ifp.lookups_global_table
    assert full.stats.ifp.lookups_local_offset > 0

    # Capacity pressure: a heap-churning workload exhausts the table.
    # Under the default policy the runtime degrades to untagged legacy
    # pointers and completes; the strict policy preserves the trap.
    from repro.errors import ResourceExhausted
    from repro.resil.policy import STRICT_POLICY
    source = """
    int main(void) {
        char *keep[5000];
        int i;
        for (i = 0; i < 5000; i++) { keep[i] = (char*)malloc(8); }
        return 0;
    }
    """
    program = compile_source(source, options)
    result = Machine(program, MachineConfig(ifp=gt_only)).run()
    assert result.ok, result.trap
    assert result.stats.degraded_allocs > 0
    result = Machine(program, MachineConfig(
        ifp=gt_only, policy=STRICT_POLICY)).run()
    assert isinstance(result.trap, ResourceExhausted)


@pytest.mark.benchmark(group="ablation")
def test_ablation_narrowing(benchmark):
    """Narrowing off: intra-object overflows become invisible and the
    walker cost disappears from promote."""
    no_narrow = CompilerOptions.wrapped(narrowing=False)

    def run():
        return _run("health", no_narrow)

    ablated = benchmark.pedantic(run, rounds=1, iterations=1)
    full = _run("health", CompilerOptions.wrapped())
    assert ablated.stats.ifp.narrow_success == 0
    assert full.stats.ifp.narrow_success > 0
    print(f"\nnarrowing ablation: cycles {ablated.stats.cycles:,} vs "
          f"{full.stats.cycles:,} with narrowing")

    intra = """
    struct S { char a[12]; char b[12]; };
    char *g;
    int main(void) {
        struct S *s = (struct S*)malloc(sizeof(struct S));
        g = s->a;
        char *q = g;
        q[13] = 'X';
        return 0;
    }
    """
    detected = Machine(compile_source(
        intra, CompilerOptions.wrapped())).run()
    missed = Machine(compile_source(intra, no_narrow)).run()
    assert detected.detected_violation and missed.ok


@pytest.mark.benchmark(group="ablation")
def test_ablation_mac(benchmark):
    """MAC off: promotes get cheaper, but metadata tampering becomes
    invisible — the security/latency trade the MAC buys."""
    no_mac = CompilerOptions.wrapped(
        ifp=IFPConfig(mac_enabled=False))

    def run():
        return _run("treeadd", no_mac)

    ablated = benchmark.pedantic(run, rounds=1, iterations=1)
    full = _run("treeadd", CompilerOptions.wrapped())
    print(f"\nmac ablation: cycles {ablated.stats.cycles:,} vs "
          f"{full.stats.cycles:,} with MAC")
    assert ablated.stats.cycles < full.stats.cycles
    assert ablated.stats.ifp.mac_failures == 0


@pytest.mark.benchmark(group="ablation")
def test_ablation_granule(benchmark):
    """A 32-byte granule halves metadata reach per offset bit but wastes
    padding; the paper's 16-byte granule maximises the size limit at
    (2^6 - 1) * 16 = 1008 bytes."""
    coarse = IFPConfig(granule=32)
    assert coarse.local_max_object == 63 * 32
    fine = IFPConfig()
    assert fine.local_max_object == 1008

    options = CompilerOptions.wrapped(ifp=coarse)

    def run():
        return _run("health", options)

    coarse_run = benchmark.pedantic(run, rounds=1, iterations=1)
    fine_run = _run("health", CompilerOptions.wrapped())
    # Same protection outcome, more padding memory with a bigger granule.
    assert coarse_run.stats.heap_objects == fine_run.stats.heap_objects
    print(f"\ngranule 32 peak memory {coarse_run.stats.peak_mapped_bytes:,}"
          f" vs granule 16 {fine_run.stats.peak_mapped_bytes:,}")


@pytest.mark.benchmark(group="ablation")
def test_ablation_bounds_spills(benchmark):
    """Callee-saved bounds spills off: removes the ldbnd/stbnd traffic
    (Figure 11's third category) at the cost of ABI fidelity."""
    no_spills = CompilerOptions.wrapped(bounds_spills=False)

    def run():
        return _run("tsp", no_spills)

    ablated = benchmark.pedantic(run, rounds=1, iterations=1)
    full = _run("tsp", CompilerOptions.wrapped())
    assert ablated.stats.bounds_ls_instructions == 0
    print(f"\nspill ablation: {full.stats.bounds_ls_instructions:,} "
          f"bounds load/stores removed")


@pytest.mark.benchmark(group="ablation")
def test_ablation_explicit_checks(benchmark):
    """Implicit checking on bounds-checked IFPRs vs explicit ifpchk per
    access — the paper's Section 4.1.1 instruction-overhead argument."""
    explicit = CompilerOptions.wrapped(explicit_checks=True)

    def run():
        return _run("health", explicit)

    explicit_run = benchmark.pedantic(run, rounds=1, iterations=1)
    implicit_run = _run("health", CompilerOptions.wrapped())
    extra = (explicit_run.stats.total_instructions
             - implicit_run.stats.total_instructions)
    print(f"\nexplicit ifpchk adds {extra:,} instructions "
          f"({extra / implicit_run.stats.total_instructions * 100:.1f}% of "
          f"the implicit build)")
    assert extra > 0
    assert explicit_run.output == implicit_run.output
