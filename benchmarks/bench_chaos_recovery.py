"""Recovery cost of the host-level chaos harness.

Measures what self-healing actually costs: the same fixed-seed
campaign is run fault-free, then under a seeded
:class:`~repro.resil.chaos.ChaosSchedule` with every host fault class
armed.  Recorded per cell:

* **recovery overhead** — chaos-cell wall time over the fault-free
  baseline's (crash/resume rounds, checkpoint restores, swept debris
  all included);
* **rounds and injections** — how much chaos the cell absorbed to get
  back to a converged verdict;
* the **convergence gate itself** — a diverged cell fails the bench,
  so the perf numbers can never be quoted for a harness that silently
  lost results.
"""

import time

import pytest

from repro.obs.metrics import write_bench
from repro.resil.chaos import (
    HOST_FAULT_CLASSES, ChaosSchedule, run_chaos_cell,
)

_SEED = 11
_PERIOD = 2
_MAX_INJECTIONS = 2


@pytest.mark.benchmark(group="chaos")
def test_chaos_recovery_overhead(benchmark, tmp_path):
    cells = {}

    def campaign():
        for kind in ("fuzz", "selftest"):
            # fault-free baseline: an empty schedule runs exactly one
            # round through the identical code path
            t0 = time.perf_counter()
            clean = run_chaos_cell(
                kind, _SEED, work_dir=str(tmp_path / f"clean-{kind}"),
                schedule=ChaosSchedule(seed=_SEED, faults=(),
                                       max_injections=0),
                jobs=2)
            clean_wall = time.perf_counter() - t0

            t0 = time.perf_counter()
            chaotic = run_chaos_cell(
                kind, _SEED, work_dir=str(tmp_path / f"chaos-{kind}"),
                schedule=ChaosSchedule(seed=_SEED,
                                       faults=HOST_FAULT_CLASSES,
                                       period=_PERIOD,
                                       max_injections=_MAX_INJECTIONS),
                jobs=2)
            chaos_wall = time.perf_counter() - t0
            cells[kind] = (clean, clean_wall, chaotic, chaos_wall)
        return cells

    benchmark.pedantic(campaign, rounds=1, iterations=1)

    rows = {}
    for kind, (clean, clean_wall, chaotic, chaos_wall) in cells.items():
        # the gate: perf numbers are only meaningful for a harness
        # that did not silently lose results
        assert clean.verdict == "converged", clean.verdict
        assert chaotic.verdict != "diverged", chaotic.diffs
        overhead = chaos_wall / (clean_wall or 1e-9)
        injections = sum(chaotic.injections.values())
        print(f"\n  {chaotic.name}: {chaotic.verdict} after "
              f"{chaotic.rounds} round(s), {chaotic.crashes} "
              f"crash/resume(s), {injections} injection(s); "
              f"{chaos_wall:.2f}s vs {clean_wall:.2f}s clean "
              f"({overhead:.2f}x)")
        rows[chaotic.name] = {
            "clean_seconds": clean_wall,
            "chaos_seconds": chaos_wall,
            "recovery_overhead": overhead,
            "rounds": chaotic.rounds,
            "crashes": chaotic.crashes,
            "injections": injections,
            "restored": chaotic.restored,
            "swept_tmp": chaotic.swept_tmp,
            "quarantined": len(chaotic.quarantined),
        }

    path = write_bench(
        "chaos_recovery",
        {"seed": _SEED, "period": _PERIOD,
         "max_injections": _MAX_INJECTIONS,
         "faults": ",".join(HOST_FAULT_CLASSES)},
        {"cells": rows})
    print(f"  bench record: {path}")
