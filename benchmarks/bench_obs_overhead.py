"""Cost of the observability subsystem (repro.obs) across engines.

Three claims worth guarding:

* **disarmed is free** — with no observer attached every instrumented
  site compiles to nothing on the fastpath (translate-time
  specialization), so armed/disarmed deltas are pure observation cost;
* **armed fastpath is still fast** — with a full observer armed the
  fastpath translates a second, guarded-emit variant of each function;
  its guest-MIPS must stay well above the armed reference interpreter
  (the CI gate requires a >= 2x geomean speedup);
* **armed engines are equivalent** — the armed fastpath and armed
  reference must agree byte-for-byte on every observable: guest
  output, exit code, trap, full RunStats, the event stream (hashed
  event-by-event), and the profiler's counters.

For every selected ``(workload, config)`` cell the script verifies the
equivalence gate, then times three modes over ``--repeats`` fresh runs
(best-of): observer-armed fastpath, observer-armed reference, and
disarmed fastpath.  Results land in ``BENCH_obs_overhead.json`` — a
repro.obs **schema v2** document whose labels name the engines and
whose cell fields are engine-keyed (``fastpath_armed_mips``,
``reference_armed_mips``, ``fastpath_disarmed_mips``).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \\
        --workloads treeadd,em3d,mst,coremark --configs baseline,subheap \\
        --check-speedup 2.0
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import math
import os
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.compiler import compile_source
from repro.eval.configs import CONFIG_NAMES, build_machine_config, \
    build_options
from repro.obs import attach_observer
from repro.obs.metrics import bench_path, metrics_document, \
    write_metrics
from repro.vm import Machine
from repro.workloads import WORKLOADS

DEFAULT_WORKLOADS = "treeadd,em3d,mst,coremark"
DEFAULT_CONFIGS = "baseline,subheap"


def _observables(result) -> Tuple:
    trap = result.trap
    return (result.exit_code, result.output,
            (type(trap).__name__, str(trap)) if trap else None,
            dataclasses.asdict(result.stats))


def _run_once(program, machine_config, engine: str, armed: bool,
              hash_events: bool = False):
    """One fresh run; returns (result, seconds, event digest or None,
    profiler metrics or None)."""
    machine = Machine(program, replace(machine_config, engine=engine))
    digest = profile = None
    if armed:
        obs = attach_observer(machine, profile=True, forensics=True,
                              tracer_capacity=0)
        if hash_events:
            hasher = hashlib.sha256()

            def sink(event):
                hasher.update(json.dumps(event.to_dict(),
                                         sort_keys=True).encode())

            obs.bus.subscribe(sink)
    start = time.perf_counter()
    result = machine.run()
    elapsed = time.perf_counter() - start
    if armed:
        profile = obs.profiler.metrics() if obs.profiler else None
        if hash_events:
            digest = hasher.hexdigest()
    return result, elapsed, digest, profile


def bench_cell(workload: str, config: str, scale: int, repeats: int,
               verify_only: bool) -> Dict:
    """Verify and time one (workload, config) cell.

    All cell fields are numeric (the repro.obs schema forbids strings
    in metrics); the "<workload>/<config>" key carries the identity
    and the field names carry the engine.
    """
    program = compile_source(WORKLOADS[workload].source(scale),
                             build_options(config))
    machine_config = build_machine_config(config)

    # Equivalence gate: armed fastpath vs armed reference must agree on
    # observables AND the full event stream (hashed event-by-event) AND
    # the profiler counters.  The hashing sink perturbs timing, so this
    # pair is never used for the measurements below.
    ref_result, _, ref_digest, ref_profile = _run_once(
        program, machine_config, "reference", armed=True,
        hash_events=True)
    fast_result, _, fast_digest, fast_profile = _run_once(
        program, machine_config, "fastpath", armed=True,
        hash_events=True)
    identical = (_observables(ref_result) == _observables(fast_result)
                 and ref_digest == fast_digest
                 and ref_profile == fast_profile)
    cell = {
        "identical": 1 if identical else 0,
        "instructions": ref_result.stats.total_instructions,
    }
    if not identical or verify_only:
        return cell

    # Timing: best-of over fresh machines (each pays translation once,
    # like every real harness run does).
    seconds = {"reference_armed": float("inf"),
               "fastpath_armed": float("inf"),
               "fastpath_disarmed": float("inf")}
    for _ in range(max(1, repeats)):
        _, t, _, _ = _run_once(program, machine_config, "reference",
                               armed=True)
        seconds["reference_armed"] = min(seconds["reference_armed"], t)
        _, t, _, _ = _run_once(program, machine_config, "fastpath",
                               armed=True)
        seconds["fastpath_armed"] = min(seconds["fastpath_armed"], t)
        _, t, _, _ = _run_once(program, machine_config, "fastpath",
                               armed=False)
        seconds["fastpath_disarmed"] = min(
            seconds["fastpath_disarmed"], t)
    instructions = cell["instructions"]
    for mode, t in seconds.items():
        cell[f"{mode}_seconds"] = round(t, 6)
        cell[f"{mode}_mips"] = round(instructions / t / 1e6, 4)
    cell["armed_speedup"] = round(
        seconds["reference_armed"] / seconds["fastpath_armed"], 4)
    cell["armed_over_disarmed"] = round(
        seconds["fastpath_armed"] / seconds["fastpath_disarmed"], 4)
    return cell


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Observer-armed fastpath vs reference vs disarmed "
                    "fastpath, with a built-in armed-equivalence gate.")
    parser.add_argument("--workloads", default=DEFAULT_WORKLOADS,
                        help=f"comma list (default {DEFAULT_WORKLOADS})")
    parser.add_argument("--configs", default=DEFAULT_CONFIGS,
                        help=f"comma list (default {DEFAULT_CONFIGS})")
    parser.add_argument("--scale", type=int, default=2,
                        help="workload scale factor (default 2)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing runs per mode, best-of "
                             "(default 2)")
    parser.add_argument("--verify-only", action="store_true",
                        help="run the armed-equivalence gate only; "
                             "skip timing")
    parser.add_argument("--out-dir", default=None,
                        help="directory for BENCH_obs_overhead.json "
                             "(default: $REPRO_BENCH_DIR or cwd)")
    parser.add_argument("--check-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the armed fastpath/reference "
                             "geomean speedup is >= X (CI uses 2.0)")
    args = parser.parse_args(argv)

    workloads = [w.strip() for w in args.workloads.split(",")
                 if w.strip()]
    configs = [c.strip() for c in args.configs.split(",") if c.strip()]
    unknown = [w for w in workloads if w not in WORKLOADS]
    if unknown:
        parser.error(f"unknown workload(s): {', '.join(unknown)}")
    unknown = [c for c in configs if c not in CONFIG_NAMES]
    if unknown:
        parser.error(f"unknown configuration(s): {', '.join(unknown)}")

    cells: Dict[str, Dict] = {}
    divergent: List[str] = []
    for workload in workloads:
        for config in configs:
            cell = bench_cell(workload, config, args.scale,
                              args.repeats, args.verify_only)
            key = f"{workload}/{config}"
            cells[key] = cell
            if not cell["identical"]:
                divergent.append(key)
                print(f"  {key:24s} DIVERGED — armed engines disagree")
            elif args.verify_only:
                print(f"  {key:24s} identical "
                      f"({cell['instructions']:,} instructions)")
            else:
                print(f"  {key:24s} "
                      f"ref+obs {cell['reference_armed_mips']:6.2f} "
                      f"fast+obs {cell['fastpath_armed_mips']:6.2f} "
                      f"fast {cell['fastpath_disarmed_mips']:6.2f} "
                      f"MIPS  speedup {cell['armed_speedup']:5.2f}x  "
                      f"obs cost {cell['armed_over_disarmed']:4.2f}x")

    speedups = [c["armed_speedup"] for c in cells.values()
                if "armed_speedup" in c]
    overheads = [c["armed_over_disarmed"] for c in cells.values()
                 if "armed_over_disarmed" in c]
    summary: Dict[str, object] = {
        "cells_verified": sum(1 for c in cells.values()
                              if c["identical"]),
        "cells_divergent": len(divergent),
    }
    if speedups:
        summary.update({
            "geomean_armed_speedup": round(
                math.exp(sum(math.log(s) for s in speedups)
                         / len(speedups)), 4),
            "min_armed_speedup": min(speedups),
            "geomean_armed_over_disarmed": round(
                math.exp(sum(math.log(o) for o in overheads)
                         / len(overheads)), 4),
        })
        print(f"geomean armed speedup "
              f"{summary['geomean_armed_speedup']:.2f}x "
              f"(min {summary['min_armed_speedup']:.2f}x); "
              f"observation costs "
              f"{summary['geomean_armed_over_disarmed']:.2f}x "
              f"over the disarmed fastpath")

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
    document = metrics_document(
        "obs_overhead",
        {"workloads": ",".join(workloads), "configs": ",".join(configs),
         "scale": str(args.scale), "repeats": str(args.repeats),
         "verify_only": str(args.verify_only)},
        {"cells": cells, "summary": summary},
        labels={"engines": "fastpath,reference",
                "observer": "armed"})
    path = write_metrics(bench_path("obs_overhead", args.out_dir),
                         document)
    print(f"bench record written to {path}")

    if divergent:
        print(f"EQUIVALENCE GATE FAILED: {', '.join(divergent)}",
              file=sys.stderr)
        return 1
    if args.check_speedup is not None and speedups:
        geomean = summary["geomean_armed_speedup"]
        if geomean < args.check_speedup:
            print(f"SPEEDUP GATE FAILED: geomean armed speedup "
                  f"{geomean:.2f}x < required "
                  f"{args.check_speedup:.2f}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
