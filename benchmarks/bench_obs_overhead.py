"""Cost of the observability subsystem (repro.obs).

Two claims worth guarding:

* **disabled is free** — with no observer attached every instrumented
  site is a single ``obs is not None`` test, so instruction throughput
  must stay within noise of the pre-observability interpreter (the PR
  acceptance bound is <= 3% on the fuzz throughput bench);
* **enabled is bounded** — full profiling (every promote, check, and
  bounds spill becomes an event) costs a measurable but usable
  multiple, reported here so regressions in sink fan-out show up.

Both benches run the same deterministic generated program end-to-end
and write a shared-schema ``BENCH_obs_overhead.json`` record.
"""

import pytest

from repro.compiler import compile_source
from repro.eval.configs import build_machine_config, build_options
from repro.fuzz import generate_program
from repro.obs import attach_observer
from repro.obs.metrics import write_bench
from repro.vm import Machine

_CONFIG = "wrapped"


def _build():
    source = generate_program(0, 0).source
    program = compile_source(source, build_options(_CONFIG))
    return program


@pytest.mark.benchmark(group="obs")
def test_obs_disabled_overhead(benchmark):
    """Interpreter throughput with no observer attached (the default)."""
    program = _build()

    def run():
        machine = Machine(program, build_machine_config(_CONFIG))
        return machine.run()

    result = benchmark(run)
    assert result.ok


@pytest.mark.benchmark(group="obs")
def test_obs_profiling_overhead(benchmark):
    """Same program with full profiling + forensics observation."""
    program = _build()

    def run():
        machine = Machine(program, build_machine_config(_CONFIG))
        attach_observer(machine, profile=True, forensics=True)
        return machine.run()

    result = benchmark(run)
    assert result.ok


@pytest.mark.benchmark(group="obs")
def test_obs_overhead_record(benchmark):
    """Measure both modes in one pass; write the bench record."""
    import time
    program = _build()

    def measure():
        records = {}
        for label, observed in (("disabled", False), ("enabled", True)):
            machine = Machine(program, build_machine_config(_CONFIG))
            if observed:
                attach_observer(machine, profile=True, forensics=True)
            started = time.perf_counter()
            result = machine.run()
            elapsed = time.perf_counter() - started
            assert result.ok
            records[label] = {
                "seconds": elapsed,
                "instructions": result.stats.total_instructions,
                "instructions_per_second":
                    result.stats.total_instructions / elapsed,
            }
        return records

    records = benchmark.pedantic(measure, rounds=3, iterations=1)
    ratio = (records["enabled"]["seconds"]
             / records["disabled"]["seconds"])
    records["enabled_over_disabled_ratio"] = ratio
    path = write_bench("obs_overhead", _CONFIG, records)
    print(f"\nobs overhead: enabled/disabled = {ratio:.2f}x; "
          f"bench record: {path}")
