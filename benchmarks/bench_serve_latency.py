"""API latency and throughput of the campaign service (repro.serve).

Drives a real socket: N tenant threads each submit M selftest jobs over
HTTP (``BackgroundServer``) and poll them to completion.  Records
submit-latency percentiles (the admission path: validation, plan
fingerprinting, scheduling, persistence), end-to-end job latency, and
sustained jobs/second — the service-layer cost on top of the raw
engine, which BENCH_parallel_scaling measures.

Two properties are asserted:

* **correctness under concurrency** — every job completes ``done`` and
  every result matches the deterministic selftest values;
* **responsiveness** — median submit latency stays under one second
  (generous: the admission path is a few dict validations plus two
  atomic file writes; regressing past that means accidental blocking
  work landed under the service lock).
"""

import json
import statistics
import threading
import time
import urllib.request

import pytest

from repro.obs.metrics import write_bench
from repro.serve import BackgroundServer, CampaignService

_TENANTS = 3
_JOBS_PER_TENANT = 4
_SPEC_PARAMS = {"total": 8, "shards": 4, "seed": 3}


def _post_job(base: str, tenant: str) -> str:
    request = urllib.request.Request(
        f"{base}/jobs", method="POST",
        data=json.dumps({"tenant": tenant, "kind": "selftest",
                         "workers": 1,
                         "params": dict(_SPEC_PARAMS)}).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as reply:
        return json.loads(reply.read())["job_id"]


def _poll_done(base: str, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with urllib.request.urlopen(f"{base}/jobs/{job_id}",
                                    timeout=30) as reply:
            record = json.loads(reply.read())
        if record["status"] in ("done", "failed", "cancelled"):
            return record
        time.sleep(0.02)
    return record


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


@pytest.mark.benchmark(group="serve")
def test_serve_latency(benchmark, tmp_path):
    service = CampaignService(str(tmp_path / "store"), workers_total=2,
                              max_concurrent_jobs=2)
    server = BackgroundServer(service)
    base = f"http://127.0.0.1:{server.start()}"

    submit_latencies = []
    job_latencies = []
    records = []
    lock = threading.Lock()

    def tenant_session(tenant: str) -> None:
        for _ in range(_JOBS_PER_TENANT):
            t0 = time.monotonic()
            job_id = _post_job(base, tenant)
            t1 = time.monotonic()
            record = _poll_done(base, job_id)
            t2 = time.monotonic()
            with lock:
                submit_latencies.append(t1 - t0)
                job_latencies.append(t2 - t0)
                records.append(record)

    def campaign():
        threads = [threading.Thread(target=tenant_session,
                                    args=(f"tenant-{index}",))
                   for index in range(_TENANTS)]
        t0 = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.monotonic() - t0

    try:
        elapsed = benchmark.pedantic(campaign, rounds=1, iterations=1)
    finally:
        server.stop()
        service.drain()

    total_jobs = _TENANTS * _JOBS_PER_TENANT
    assert len(records) == total_jobs
    expected = None
    for record in records:
        assert record["status"] == "done", record
        values = record["result"]["values"]
        if expected is None:
            expected = values
        assert values == expected     # deterministic across tenants

    submit_p50 = statistics.median(submit_latencies)
    metrics = {
        "jobs_total": total_jobs,
        "tenants": _TENANTS,
        "jobs_per_second": total_jobs / (elapsed or 1e-9),
        "submit_latency": {
            "p50_seconds": submit_p50,
            "p95_seconds": _percentile(submit_latencies, 0.95),
            "max_seconds": max(submit_latencies),
        },
        "job_latency": {
            "p50_seconds": statistics.median(job_latencies),
            "p95_seconds": _percentile(job_latencies, 0.95),
            "max_seconds": max(job_latencies),
        },
    }
    print(f"\n  {total_jobs} jobs over {_TENANTS} tenants in "
          f"{elapsed:.2f}s ({metrics['jobs_per_second']:.1f} jobs/s); "
          f"submit p50 {submit_p50 * 1000:.1f}ms, "
          f"p95 {metrics['submit_latency']['p95_seconds'] * 1000:.1f}ms")
    assert submit_p50 < 1.0, (
        f"submit p50 regressed to {submit_p50:.2f}s — blocking work "
        f"has crept into the admission path")

    path = write_bench(
        "serve_latency",
        {"tenants": _TENANTS, "jobs_per_tenant": _JOBS_PER_TENANT,
         "params": ",".join(f"{k}={v}"
                            for k, v in sorted(_SPEC_PARAMS.items()))},
        metrics)
    print(f"  bench record: {path}")
