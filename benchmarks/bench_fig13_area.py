"""Figure 13 — LUT increase decomposition in the modified processor."""

import pytest

from repro.hwmodel import AreaModel
from repro.hwmodel.area import MODIFIED_LUTS, VANILLA_LUTS


@pytest.mark.benchmark(group="figure13")
def test_figure13_regeneration(benchmark):
    model = AreaModel()
    rows = benchmark(model.figure13_rows)
    print("\n=== Figure 13 (reproduced): LUT decomposition ===")
    print(model.report())

    # The model is calibrated to the paper's reported totals.
    assert model.total_luts() == MODIFIED_LUTS
    assert round(model.lut_overhead() * 100) == 60
    assert round(model.ff_overhead() * 100) == 48
    # Execute stage dominates; IFP unit is its biggest piece.
    stages = model.stage_breakdown()
    assert stages["execute"][1] > stages["issue"][1] > stages["cache"][1]
    growth = {name: g for name, _s, _v, g in rows}
    assert growth["bounds_register_file"] > growth["ifp_unit.layout_walker"]


@pytest.mark.benchmark(group="figure13")
def test_area_what_if_sweep(benchmark):
    """The paper's guidance: bounds registers are the first thing to cut
    for a sub-30% area budget; the layout walker is the second."""
    def sweep():
        return {
            "full": AreaModel().lut_overhead(),
            "no-bounds-regs": AreaModel(
                bounds_registers=False).lut_overhead(),
            "no-walker": AreaModel(layout_walker=False).lut_overhead(),
            "object-granularity-minimum": AreaModel(
                bounds_registers=False, layout_walker=False,
                schemes=("global_table",)).lut_overhead(),
        }

    overheads = benchmark(sweep)
    print("\narea what-ifs:")
    for name, value in overheads.items():
        print(f"  {name:28s} +{value * 100:.1f}% LUTs")
    assert overheads["full"] > overheads["no-bounds-regs"] \
        > overheads["object-granularity-minimum"]
