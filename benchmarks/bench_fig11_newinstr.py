"""Figure 11 — dynamic counts of the instructions In-Fat Pointer adds,
as a share of baseline instructions, split into promote / IFP arithmetic
/ bounds load-store."""

import pytest

from repro.eval import figure11_series, format_figure


@pytest.mark.benchmark(group="figure11")
def test_figure11_regeneration(benchmark, sweep):
    series = benchmark(figure11_series, sweep)
    print("\n=== Figure 11 (reproduced): new-instruction share ===")
    print(format_figure(series, "new instructions / baseline"))

    promote = dict(series["subheap/promote"])
    arith = dict(series["subheap/ifp-arith"])

    # Paper shapes:
    # 1. ft/ks are promote-heavy (paper: ft/ks highest promote shares).
    assert promote["ft"] > 0.02
    assert promote["ks"] > 0.05
    # 2. "In 10 of 18 benchmarks promotes are less than 2% of total" —
    #    our scaled-down inputs keep a majority under a small share.
    low = sum(1 for share in promote.values() if share < 0.04)
    assert low >= 9
    # 3. IFP arithmetic (tag updates, metadata init) is a major
    #    component for registration-heavy programs like bh.
    assert arith["bh"] > promote["bh"]
    # 4. Bounds load/store is a minor but present category overall.
    bls_total = sum(v for _n, v in series["subheap/bounds-ls"])
    assert bls_total >= 0.0


@pytest.mark.benchmark(group="figure11")
def test_instruction_stream_identical_across_promote_modes(benchmark, sweep):
    """The no-promote build executes the *same* instruction mix — only
    cycle costs change (the paper's methodology note)."""
    def check():
        for workload in sweep.workloads:
            full = sweep.run(workload, "subheap").stats
            nop = sweep.run(workload, "subheap-np").stats
            assert full.promote_instructions == nop.promote_instructions
            assert full.ifp_arith_instructions == nop.ifp_arith_instructions
        return True

    assert benchmark(check)
