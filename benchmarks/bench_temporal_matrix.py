"""Temporal lock-and-key detection matrix: scheme x CWE family.

The paper's Juliet claim is spatial; this benchmark extends the same
accounting to the lifetime families (CWE-415 double free, CWE-416
use-after-free and stale-pre-realloc) under the temporal lock-and-key
policy.  Each cell of the scheme x family matrix runs every generated
good/bad pair under one policy mode and scores:

* **detected** — every bad variant traps (no missed detections);
* **transparent** — every good variant runs trap-free (no false
  positives);
* **engine_identical** — the reference interpreter and the fastpath
  agree byte-for-byte on (exit code, guest output, trap class, trap
  message) for every case in the cell.

Scheme routing follows allocation size: the small cases allocate a few
dozen bytes, so ``wrapped`` compiles them onto LOCAL_OFFSET and
``subheap`` onto SUBHEAP; the big (``_gt``) variants allocate 8192-int
buffers, which overflow both fast schemes and land in the GLOBAL_TABLE.

Results land in ``BENCH_temporal_matrix.json`` — a repro.obs schema v1
document with one numeric cell per ``<scheme>/<family>`` key.  CI runs
with ``--check``: zero missed detections, zero false positives, and
zero engine divergences in check mode, or exit 1.

Usage::

    PYTHONPATH=src python benchmarks/bench_temporal_matrix.py
    PYTHONPATH=src python benchmarks/bench_temporal_matrix.py \\
        --temporal quarantine --schemes local_offset,subheap
    PYTHONPATH=src python benchmarks/bench_temporal_matrix.py --check
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Tuple

from repro.compiler import CompilerOptions, compile_source
from repro.juliet.cases import JulietCase, generate_temporal_cases
from repro.obs.metrics import bench_path, metrics_document, write_metrics
from repro.vm import Machine, MachineConfig

#: matrix rows: scheme name -> (compiler options factory, big cases?)
SCHEMES: Dict[str, Tuple[str, bool]] = {
    "local_offset": ("wrapped", False),
    "subheap": ("subheap", False),
    "global_table": ("wrapped", True),
}

#: matrix columns: family name -> (cwe, direction) selector
FAMILIES: Dict[str, Tuple[str, str]] = {
    "CWE-415": ("CWE-415", "dfree"),
    "CWE-416-uaf": ("CWE-416", "uaf"),
    "CWE-416-stale": ("CWE-416", "stale"),
}

#: trap classes that count as a *temporal* detection (InvalidFree is
#: the allocators' structural free-path check catching a double free
#: before the lock comparison runs — still a detection, tallied apart)
TEMPORAL_TRAPS = ("TemporalViolation",)


def _options(name: str) -> CompilerOptions:
    return CompilerOptions.subheap() if name == "subheap" \
        else CompilerOptions.wrapped()


def _observables(result) -> Tuple:
    trap = result.trap
    return (result.exit_code, result.output,
            (type(trap).__name__, str(trap)) if trap else None)


def _run_case(case: JulietCase, options: CompilerOptions,
              temporal: str, engine: str):
    program = compile_source(case.source, options)
    return Machine(program, MachineConfig(
        max_instructions=2_000_000, temporal=temporal,
        engine=engine)).run()


def bench_cell(scheme: str, family: str, cases: List[JulietCase],
               temporal: str) -> Tuple[Dict, List[str]]:
    """Run one matrix cell; returns (numeric metrics, failure notes)."""
    options = _options(SCHEMES[scheme][0])
    cell = {"bad": 0, "detected": 0, "temporal_traps": 0, "missed": 0,
            "good": 0, "false_positive": 0, "divergent": 0}
    notes: List[str] = []
    for case in cases:
        reference = _run_case(case, options, temporal, "reference")
        fastpath = _run_case(case, options, temporal, "fastpath")
        if _observables(reference) != _observables(fastpath):
            cell["divergent"] += 1
            notes.append(f"{case.name}: engines diverge "
                         f"({_observables(reference)[2]} vs "
                         f"{_observables(fastpath)[2]})")
        result = fastpath
        trap_name = type(result.trap).__name__ if result.trap else None
        if case.is_bad:
            cell["bad"] += 1
            if result.trap is not None:
                cell["detected"] += 1
                if trap_name in TEMPORAL_TRAPS:
                    cell["temporal_traps"] += 1
            else:
                cell["missed"] += 1
                notes.append(f"{case.name}: bad case ran silently")
        else:
            cell["good"] += 1
            if result.trap is not None:
                cell["false_positive"] += 1
                notes.append(f"{case.name}: good case trapped "
                             f"({trap_name}: {result.trap})")
    cell["detected_verdict"] = int(cell["bad"] > 0
                                   and cell["missed"] == 0)
    cell["transparent_verdict"] = int(cell["false_positive"] == 0)
    cell["engine_identical"] = int(cell["divergent"] == 0)
    return cell, notes


def select_cases(scheme: str, family: str) -> List[JulietCase]:
    cwe, direction = FAMILIES[family]
    cases = generate_temporal_cases(big=SCHEMES[scheme][1])
    return [case for case in cases
            if case.cwe == cwe and case.direction == direction]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Temporal lock-and-key detection matrix over the "
                    "CWE-415/CWE-416 Juliet-style families.")
    parser.add_argument("--temporal", default="check",
                        choices=("check", "quarantine"),
                        help="policy mode under test (default check)")
    parser.add_argument("--schemes", default=",".join(SCHEMES),
                        help=f"comma list (default {','.join(SCHEMES)})")
    parser.add_argument("--families", default=",".join(FAMILIES),
                        help=f"comma list (default {','.join(FAMILIES)})")
    parser.add_argument("--out-dir", default=None,
                        help="directory for BENCH_temporal_matrix.json "
                             "(default: $REPRO_BENCH_DIR or cwd)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless every cell detects all bad "
                             "cases, passes all good cases, and the "
                             "engines agree byte-for-byte")
    args = parser.parse_args(argv)

    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    unknown = [s for s in schemes if s not in SCHEMES]
    if unknown:
        parser.error(f"unknown scheme(s): {', '.join(unknown)}")
    unknown = [f for f in families if f not in FAMILIES]
    if unknown:
        parser.error(f"unknown family(-ies): {', '.join(unknown)}")

    cells: Dict[str, Dict] = {}
    failures: List[str] = []
    print(f"temporal={args.temporal}")
    for scheme in schemes:
        for family in families:
            cases = select_cases(scheme, family)
            cell, notes = bench_cell(scheme, family, cases,
                                     args.temporal)
            cells[f"{scheme}/{family}"] = cell
            failures.extend(f"{scheme}/{family}: {note}"
                            for note in notes)
            verdict = ("ok" if cell["detected_verdict"]
                       and cell["transparent_verdict"]
                       and cell["engine_identical"] else "FAIL")
            print(f"  {scheme:13s} {family:14s} "
                  f"bad {cell['detected']}/{cell['bad']} detected "
                  f"({cell['temporal_traps']} temporal), "
                  f"good {cell['good'] - cell['false_positive']}"
                  f"/{cell['good']} clean, "
                  f"engines {'identical' if cell['engine_identical'] else 'DIVERGED'}"
                  f"  [{verdict}]")

    summary = {
        "cells": len(cells),
        "missed_detections": sum(c["missed"] for c in cells.values()),
        "false_positives": sum(c["false_positive"]
                               for c in cells.values()),
        "engine_divergences": sum(c["divergent"]
                                  for c in cells.values()),
    }
    print(f"summary: {summary['missed_detections']} missed, "
          f"{summary['false_positives']} false positives, "
          f"{summary['engine_divergences']} engine divergences "
          f"across {summary['cells']} cells")

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
    document = metrics_document(
        "temporal_matrix",
        {"temporal": args.temporal, "schemes": ",".join(schemes),
         "families": ",".join(families)},
        {"cells": cells, "summary": summary})
    path = write_metrics(bench_path("temporal_matrix", args.out_dir),
                         document)
    print(f"bench record written to {path}")

    if args.check and (summary["missed_detections"]
                       or summary["false_positives"]
                       or summary["engine_divergences"]):
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        print("TEMPORAL MATRIX GATE FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
