"""Section 5.1 — functional evaluation on the Juliet-style suite.

The paper's result: every vulnerable case detected, every non-vulnerable
case passes.  Reproduced here over the generated CWE matrix for both
instrumented allocator configurations.
"""

import pytest

from repro.compiler import CompilerOptions
from repro.juliet import generate_cases, run_suite


@pytest.mark.benchmark(group="juliet")
def test_juliet_full_suite_wrapped(benchmark):
    report = benchmark.pedantic(
        run_suite, args=(CompilerOptions.wrapped(),), rounds=1,
        iterations=1)
    print("\n=== Functional evaluation (reproduced, wrapped) ===")
    print(report.summary())
    assert report.detected == report.bad_total
    assert report.false_positives == 0
    # Intra-object cases run (unlike the paper, where the compiler
    # optimised them away) and are all detected.
    intra = report.by_cwe()["intra-object"]
    assert intra["detected"] == intra["bad"] > 0


@pytest.mark.benchmark(group="juliet")
def test_juliet_subset_subheap(benchmark):
    cases = generate_cases(regions=["heap", "subobject"])
    report = benchmark.pedantic(
        run_suite, args=(CompilerOptions.subheap(), cases), rounds=1,
        iterations=1)
    print("\n=== Functional evaluation (reproduced, subheap) ===")
    print(report.summary())
    assert report.all_passed


@pytest.mark.benchmark(group="juliet")
def test_juliet_case_throughput(benchmark):
    """Microbenchmark: compile+run latency of a single Juliet case (the
    unit of the functional evaluation's 14+-hour FPGA runtime)."""
    from repro.juliet.runner import run_case
    case = next(c for c in generate_cases(regions=["stack"], flows=["01"])
                if c.is_bad)
    result = benchmark(run_case, case)
    assert result.passed
