"""Throughput of the differential fuzzing subsystem (repro.fuzz).

The fuzzer's value scales with how many generated programs it can push
through the compile-run-compare loop per second, so this bench tracks
three costs separately:

* **generation** — seed to mini-C source (no compilation);
* **transparency** — one clean differential iteration across the
  standard configuration set;
* **end-to-end** — the full driver loop (clean phase + attack
  injection) as ``python -m repro.fuzz`` runs it.
"""

import pytest

from repro.fuzz import check_clean, generate_program, run_fuzz
from repro.obs.metrics import write_bench

_CONFIGS = ["baseline", "subheap", "wrapped", "subheap-np"]


@pytest.mark.benchmark(group="fuzz")
def test_fuzz_generation_rate(benchmark):
    """Pure generation: seed -> source, no compilation or execution."""
    counter = [0]

    def generate_batch():
        base = counter[0]
        counter[0] += 50
        return [generate_program(0, base + i).source for i in range(50)]

    sources = benchmark(generate_batch)
    assert len(sources) == 50
    assert all("int main(void)" in s for s in sources)


@pytest.mark.benchmark(group="fuzz")
def test_fuzz_transparency_rate(benchmark):
    """One clean differential check across the standard config set."""
    program = generate_program(0, 0)

    def check():
        return check_clean(program.source, _CONFIGS)

    runs, divergences = benchmark.pedantic(check, rounds=3, iterations=1)
    assert divergences == []
    assert len(runs) == len(_CONFIGS)


@pytest.mark.benchmark(group="fuzz")
def test_fuzz_end_to_end_rate(benchmark, tmp_path):
    """The full driver loop, as the CLI runs it; reports programs/s and
    executions/s alongside the timing."""

    def fuzz():
        return run_fuzz(10, seed=0, corpus_dir=str(tmp_path),
                        log=lambda message: None, progress_every=0)

    stats = benchmark.pedantic(fuzz, rounds=1, iterations=1)
    assert stats.ok, stats.summary()
    print(f"\nfuzz throughput: "
          f"{stats.programs / stats.elapsed:.2f} programs/s, "
          f"{stats.executions / stats.elapsed:.1f} runs/s "
          f"({stats.attacks_injected} attacks, "
          f"{stats.attacks_detected}/{stats.attacks_detectable} "
          f"detected)")
    # Seed the perf trajectory: BENCH_fuzz_throughput.json in the shared
    # repro.obs schema ($REPRO_BENCH_DIR overrides the directory).
    path = write_bench(
        "fuzz_throughput",
        {"seed": 0, "iterations": 10, "configs": ",".join(stats.configs)},
        stats.metrics())
    print(f"bench record: {path}")
