"""Microbenchmarks of the reproduction's own hot paths.

These measure the *simulator* (host-side Python performance), which is
what bounds how large an input scale the evaluation harness can sweep.
"""

import pytest

from repro.cache import Cache, HierarchyConfig
from repro.compiler import CompilerOptions, compile_source
from repro.ifp import IFPUnit, LayoutEntry, LayoutTable
from repro.ifp.mac import compute_mac
from repro.ifp.tag import PointerTag, Scheme, pack_pointer, unpack_tag
from repro.ifp.poison import Poison
from repro.mem import Memory
from repro.vm import Machine, MachineConfig


def _unit_with_object():
    memory = Memory()
    memory.map_range(0x10000, 0x10000)
    unit = IFPUnit(memory, HierarchyConfig().build())
    table = LayoutTable("S", [
        LayoutEntry(0, 0, 24, 24), LayoutEntry(0, 0, 4, 4),
        LayoutEntry(0, 4, 20, 8), LayoutEntry(2, 0, 4, 4),
        LayoutEntry(2, 4, 8, 4), LayoutEntry(0, 20, 24, 4),
    ])
    memory.write_bytes(0x10000, table.serialize())
    unit.local_offset.write_metadata(memory, 0x11000, 24, 0x10000,
                                     unit.mac_key)
    return unit


@pytest.mark.benchmark(group="micro")
def test_promote_object_bounds(benchmark):
    unit = _unit_with_object()
    pointer = unit.local_offset.make_pointer(0x11000, 0x11000, 24)
    result = benchmark(unit.promote, pointer)
    assert result.bounds is not None


@pytest.mark.benchmark(group="micro")
def test_promote_with_narrowing(benchmark):
    unit = _unit_with_object()
    pointer = unit.local_offset.make_pointer(0x11010, 0x11000, 24, 4)
    result = benchmark(unit.promote, pointer)
    assert result.narrowed


@pytest.mark.benchmark(group="micro")
def test_promote_legacy_bypass(benchmark):
    unit = _unit_with_object()
    result = benchmark(unit.promote, 0x12345)
    assert result.bounds is None


@pytest.mark.benchmark(group="micro")
def test_tag_pack_unpack(benchmark):
    tag = PointerTag(Poison.VALID, Scheme.SUBHEAP, 0x5AB)

    def roundtrip():
        return unpack_tag(pack_pointer(0x123456789A, tag))

    assert benchmark(roundtrip).payload == 0x5AB


@pytest.mark.benchmark(group="micro")
def test_mac_throughput(benchmark):
    value = benchmark(compute_mac, 0x1F9A7, (0x11000, 24, 0x10000))
    assert value < 1 << 48


@pytest.mark.benchmark(group="micro")
def test_cache_access(benchmark):
    cache = Cache()

    def touch():
        cache.access(0x1234, 8)

    benchmark(touch)


@pytest.mark.benchmark(group="micro")
def test_compile_throughput(benchmark):
    source = """
    struct Node { int v; struct Node *next; };
    int sum(struct Node *n) {
        int t = 0;
        while (n != NULL) { t += n->v; n = n->next; }
        return t;
    }
    int main(void) { return 0; }
    """
    program = benchmark(compile_source, source, CompilerOptions.wrapped())
    assert "sum" in program.functions


@pytest.mark.benchmark(group="micro")
def test_interpreter_throughput(benchmark):
    source = """
    int main(void) {
        long total = 0;
        int i;
        for (i = 0; i < 5000; i++) { total += i; }
        return (int)(total & 0x7f);
    }
    """
    program = compile_source(source, CompilerOptions.baseline())

    def run():
        return Machine(program, MachineConfig()).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.ok


@pytest.mark.benchmark(group="micro")
def test_subheap_alloc_throughput(benchmark):
    program = compile_source("int main(void) { return 0; }",
                             CompilerOptions.subheap())
    machine = Machine(program)
    allocator = machine.subheap_allocator

    def alloc_free():
        pointer, _b, _c, _i = allocator.malloc(24, 0, 24)
        allocator.free(pointer)

    benchmark(alloc_free)
