"""Quantitative defense comparison: In-Fat Pointer vs the ASan-like and
MPX-like baselines on the same workloads and the same machine.

The paper positions IFP against these families via Table 1 and their
reported overheads (ASan-class ~2x runtime, large shadow footprints; MPX
~50 % runtime, 1.9-2.1x memory).  This bench measures the implemented
baselines directly, so the comparison no longer relies on numbers quoted
across papers.
"""

import pytest

from repro.compiler import CompilerOptions, compile_source
from repro.eval.figures import geomean
from repro.vm import Machine, MachineConfig
from repro.workloads import get

_WORKLOADS = ("treeadd", "health", "ks", "yacr2", "anagram")

_DEFENSES = {
    "ifp-subheap": CompilerOptions.subheap(),
    "ifp-wrapped": CompilerOptions.wrapped(),
    "asan": CompilerOptions.asan(),
    "mpx": CompilerOptions.mpx(),
}


def _run(workload, options):
    program = compile_source(workload.source(1), options)
    result = Machine(program, MachineConfig(
        max_instructions=200_000_000)).run()
    assert result.ok, (workload.name, options.defense, result.trap)
    return result.stats


@pytest.fixture(scope="module")
def comparison():
    table = {}
    for name in _WORKLOADS:
        workload = get(name)
        base = _run(workload, CompilerOptions.baseline())
        row = {}
        for defense, options in _DEFENSES.items():
            stats = _run(workload, options)
            row[defense] = {
                "instr": stats.total_instructions / base.total_instructions,
                "cycles": stats.cycles / base.cycles,
                "memory": stats.peak_mapped_bytes / base.peak_mapped_bytes,
            }
        table[name] = row
    return table


@pytest.mark.benchmark(group="baseline-comparison")
def test_defense_comparison_table(benchmark, comparison):
    def summarise():
        return {
            defense: {
                metric: geomean([comparison[w][defense][metric] - 1.0
                                 for w in _WORKLOADS])
                for metric in ("instr", "cycles", "memory")
            }
            for defense in _DEFENSES
        }

    summary = benchmark(summarise)
    print("\n=== Defense comparison (geo-mean overhead vs baseline) ===")
    print(f"{'defense':13s} {'instr':>8s} {'cycles':>8s} {'memory':>8s}")
    for defense, metrics in summary.items():
        print(f"{defense:13s} {metrics['instr']*100:7.1f}% "
              f"{metrics['cycles']*100:7.1f}% {metrics['memory']*100:7.1f}%")
    print("\nper-benchmark cycle overheads:")
    for name in _WORKLOADS:
        row = " ".join(f"{d}:{(comparison[name][d]['cycles']-1)*100:6.1f}%"
                       for d in _DEFENSES)
        print(f"  {name:10s} {row}")

    # The ordering the whole paper argues for:
    assert summary["ifp-subheap"]["instr"] < summary["mpx"]["instr"] \
        < summary["asan"]["instr"]
    assert summary["ifp-wrapped"]["instr"] < summary["asan"]["instr"]
    # Shadow memory dwarfs everything else's footprint.
    assert summary["asan"]["memory"] > summary["ifp-subheap"]["memory"]
    assert summary["asan"]["memory"] > summary["mpx"]["memory"]


@pytest.mark.benchmark(group="baseline-comparison")
def test_protection_coverage_matrix(benchmark):
    """Table 1's granularity column, demonstrated behaviourally."""
    cases = {
        "heap overflow": """
            int main(void) {
                char *p = (char*)malloc(16);
                int i;
                for (i = 0; i <= 16; i++) { p[i] = 'x'; }
                return 0;
            }
        """,
        "intra-object": """
            struct S { char a[12]; char b[12]; };
            char *g;
            int main(void) {
                struct S *s = (struct S*)malloc(sizeof(struct S));
                g = s->a;
                char *q = g;
                q[13] = 'X';
                return 0;
            }
        """,
        "use-after-free": """
            int *g;
            int main(void) {
                g = (int*)malloc(16);
                free(g);
                int *p = g;
                *p = 1;
                return 0;
            }
        """,
    }

    def matrix():
        out = {}
        for case_name, source in cases.items():
            for defense, options in _DEFENSES.items():
                program = compile_source(source, options)
                result = Machine(program).run()
                out[(case_name, defense)] = result.detected_violation
        return out

    detected = benchmark.pedantic(matrix, rounds=1, iterations=1)
    print("\n=== Detection coverage (Table 1, behaviourally) ===")
    for case_name in cases:
        row = "  ".join(f"{d}={'Y' if detected[(case_name, d)] else 'n'}"
                        for d in _DEFENSES)
        print(f"  {case_name:16s} {row}")

    # Spatial object-level: everyone detects.
    for defense in _DEFENSES:
        assert detected[("heap overflow", defense)], defense
    # Subobject granularity: pointer-based schemes only (IFP + MPX).
    assert detected[("intra-object", "ifp-subheap")]
    assert detected[("intra-object", "ifp-wrapped")]
    assert detected[("intra-object", "mpx")]
    assert not detected[("intra-object", "asan")]
    # Temporal: ASan's quarantine wins; MPX misses; IFP catches this one
    # via metadata invalidation (wrapped allocator clears on free).
    assert detected[("use-after-free", "asan")]
    assert not detected[("use-after-free", "mpx")]
