"""Table 4 — dynamic event counts on object instrumentation, promotion,
and instructions executed.

Run with ``pytest benchmarks/bench_table4_events.py --benchmark-only -s``
to see the regenerated table.
"""

import pytest

from repro.eval import format_table4, table4_rows


@pytest.mark.benchmark(group="table4")
def test_table4_regeneration(benchmark, sweep):
    rows = benchmark(table4_rows, sweep)
    print("\n=== Table 4 (reproduced) ===")
    print(format_table4(rows))

    by_name = {r.benchmark: r for r in rows}
    # Paper shapes that must hold:
    # treeadd/perimeter faster than baseline under the subheap allocator.
    assert by_name["treeadd"].subheap_ratio < 1.0
    assert by_name["perimeter"].subheap_ratio < 1.0
    # Wrapper-allocating programs carry no heap layout tables.
    for name in ("treeadd", "bisort", "perimeter", "wolfcrypt-dh", "bzip2"):
        assert by_name[name].heap_lt_pct == 0.0, name
    # anagram's typed allocations all carry tables (paper: ~100%).
    assert by_name["anagram"].heap_lt_pct == 100.0
    # bh is the only massive local-object registerer.
    assert by_name["bh"].local_objects == max(r.local_objects for r in rows)
    # The wrapped build always costs at least as many instructions as
    # the subheap build's allocator-adjusted count on alloc-heavy codes.
    geo_sub = 1.0
    geo_wrap = 1.0
    for r in rows:
        geo_sub *= r.subheap_ratio
        geo_wrap *= r.wrapped_ratio
    geo_sub **= 1 / len(rows)
    geo_wrap **= 1 / len(rows)
    print(f"geo-mean instruction ratio: subheap {geo_sub:.3f}x "
          f"(paper 1.05x), wrapped {geo_wrap:.3f}x (paper 1.14x)")
    assert geo_sub < geo_wrap


@pytest.mark.benchmark(group="table4")
def test_valid_promote_accounting(benchmark, sweep):
    """Paper: >20% of promotes on average see NULL or legacy pointers."""
    def bypass_share():
        shares = []
        for workload in sweep.workloads:
            ifp = sweep.run(workload, "subheap").stats.ifp
            if ifp.promotes_total:
                shares.append(ifp.promotes_bypassed / ifp.promotes_total)
        return sum(shares) / len(shares)

    share = benchmark(bypass_share)
    print(f"\nmean promote bypass share: {share * 100:.0f}% "
          f"(paper: >20%)")
    assert share > 0.20
