"""Figure 12 — memory overhead of applicable benchmarks.

Uses a larger input scale than the runtime figures: peak footprint is
measured in pages, so tiny heaps quantise to zero overhead (the same
reason the paper excludes its sub-6MB programs from this figure).
"""

import pytest

from repro.eval import figure12_series, format_figure, geomean


@pytest.mark.benchmark(group="figure12")
def test_figure12_regeneration(benchmark, memory_sweep):
    series = benchmark(figure12_series, memory_sweep, ())
    print("\n=== Figure 12 (reproduced): memory overhead (scale 3) ===")
    print(format_figure(series, "peak mapped memory vs baseline"))

    subheap = dict(series["subheap"])
    wrapped = dict(series["wrapped"])
    gm_sub = geomean(list(subheap.values()))
    gm_wrap = geomean(list(wrapped.values()))
    print(f"\ngeo-means: subheap {gm_sub*100:.1f}% (paper -6%), "
          f"wrapped {gm_wrap*100:.1f}% (paper +21%)")

    # Paper shapes:
    # 1. The subheap allocator *reduces* footprint on benchmarks that
    #    allocate many same-size objects individually (paper: 6 of 15).
    savers = [name for name, v in subheap.items() if v < 0]
    assert {"treeadd", "perimeter"} <= set(savers)
    assert len(savers) >= 3
    # 2. em3d is the worst subheap case (array allocations of differing
    #    sizes land in separate blocks).
    assert subheap["em3d"] == max(subheap.values())
    # 3. The wrapped allocator only ever adds memory (per-object
    #    metadata) and its geo-mean exceeds the subheap's.
    assert all(v >= 0 for v in wrapped.values())
    assert gm_wrap > gm_sub
