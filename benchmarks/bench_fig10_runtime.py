"""Figure 10 — runtime overhead of all benchmarks, four series
(subheap / wrapped, each with and without promote)."""

import pytest

from repro.eval import figure10_series, format_figure, geomean


@pytest.mark.benchmark(group="figure10")
def test_figure10_regeneration(benchmark, sweep):
    series = benchmark(figure10_series, sweep)
    print("\n=== Figure 10 (reproduced): runtime overhead ===")
    print(format_figure(series, "runtime overhead vs baseline"))

    gm = {name: geomean([v for _n, v in points])
          for name, points in series.items()}
    print(f"\ngeo-means: subheap {gm['subheap']*100:.1f}% (paper ~12%), "
          f"wrapped {gm['wrapped']*100:.1f}% (paper ~24%)")

    # Paper shapes:
    # 1. subheap beats wrapped in geo-mean.
    assert gm["subheap"] < gm["wrapped"]
    # 2. removing promote removes most of the remaining overhead.
    assert gm["subheap-np"] < gm["subheap"]
    assert gm["wrapped-np"] < gm["wrapped"]
    # 3. treeadd/perimeter are net wins under the subheap allocator.
    subheap = dict(series["subheap"])
    assert subheap["treeadd"] < 0
    assert subheap["perimeter"] < 0.05
    # 4. overheads land in the paper's broad band (< 100% everywhere).
    for name, points in series.items():
        for bench, overhead in points:
            assert overhead < 1.0, (name, bench, overhead)


@pytest.mark.benchmark(group="figure10")
def test_promote_is_largest_contributor(benchmark, sweep):
    """Paper Section 5.2.2: "the largest contributing factor of the
    overhead are promote instructions" — measured by comparing each full
    build against its no-promote twin."""
    def promote_share():
        shares = []
        for workload in sweep.workloads:
            base = sweep.run(workload, "baseline").cycles
            full = sweep.run(workload, "subheap").cycles
            nop = sweep.run(workload, "subheap-np").cycles
            if full > base:
                shares.append((full - nop) / (full - base))
        return sum(shares) / len(shares)

    share = benchmark(promote_share)
    print(f"\npromote share of subheap overhead: {share * 100:.0f}%")
    assert share > 0.5
