"""Shared fixtures for the benchmark harness.

The expensive artefact — the full 18-benchmark, five-configuration sweep
— is computed once per session and shared by every table/figure bench.
"""

from __future__ import annotations

import pytest

from repro.eval import Sweep


@pytest.fixture(scope="session")
def sweep():
    """The full evaluation sweep at scale 1 (runtime/instruction figures)."""
    swept = Sweep(scale=1)
    swept.all_runs()
    swept.verify_outputs_agree()
    return swept


@pytest.fixture(scope="session")
def memory_sweep():
    """A larger-scale sweep for the memory figure: page-granularity
    footprints need bigger heaps to resolve (the paper similarly excludes
    its sub-6MB programs)."""
    from repro.workloads import all_workloads
    small = {"ks", "yacr2", "coremark"}
    swept = Sweep(scale=3, workloads=[w for w in all_workloads()
                                      if w.name not in small])
    for workload in swept.workloads:
        for config in ("baseline", "subheap", "wrapped"):
            swept.run(workload, config)
    return swept
