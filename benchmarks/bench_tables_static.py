"""Tables 1-3 — the comparison, scheme-constraint and instruction tables.

Table 2's claimed constraints are verified against the actual scheme
implementations, not just restated.
"""

import pytest

from repro.compiler.ir import MNEMONICS, Op
from repro.eval.related import (
    TABLE1_ROWS, TABLE2_ROWS, TABLE3_ROWS, format_table1, format_table2,
    format_table3,
)
from repro.ifp import DEFAULT_CONFIG
from repro.ifp.schemes import (
    GlobalTableScheme, LocalOffsetScheme, SubheapRegion,
)


@pytest.mark.benchmark(group="tables")
def test_table1_regeneration(benchmark):
    text = benchmark(format_table1)
    print("\n=== Table 1 (reproduced) ===")
    print(text)
    assert len(TABLE1_ROWS) == 21
    ifp = next(r for r in TABLE1_ROWS if r.defense == "In-Fat Pointer")
    assert ifp.granularity == "Subobject" and ifp.tagged_pointer


@pytest.mark.benchmark(group="tables")
def test_table2_verified_against_implementation(benchmark):
    text = benchmark(format_table2)
    print("\n=== Table 2 (reproduced) ===")
    print(text)

    rows = {r.scheme: r for r in TABLE2_ROWS}
    # Local offset: size-limited (S), placement-free (no B), unbounded
    # object count (no C).
    local = LocalOffsetScheme(DEFAULT_CONFIG)
    assert rows["Local Offset Scheme"].limits_object_size
    assert not local.supports_size(DEFAULT_CONFIG.local_max_object + 1)
    assert local.supports_size(DEFAULT_CONFIG.local_max_object)
    # Subheap: constrains base addresses (power-of-two blocks).
    region = SubheapRegion(12, 0)
    assert rows["Subheap Scheme"].constrains_base_address
    assert region.block_base(0x12345) == 0x12000
    # Global table: count-limited by the 12-bit index.
    assert rows["Global Table Scheme"].limits_object_count
    assert DEFAULT_CONFIG.global_table_rows == 1 << 12


@pytest.mark.benchmark(group="tables")
def test_table3_matches_implemented_isa(benchmark):
    text = benchmark(format_table3)
    print("\n=== Table 3 (reproduced) ===")
    print(text)
    implemented = {MNEMONICS[op] for op in Op if op >= Op.PROMOTE}
    listed = {r.mnemonic for r in TABLE3_ROWS}
    assert listed == implemented
